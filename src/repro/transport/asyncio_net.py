"""Real TCP transport: framed messages over asyncio stream connections.

Implements the :class:`~repro.transport.base.Transport` seam with actual
sockets, mirroring the structure of deployed chained-BFT nodes (and SNIPPETS
snippet 1's ``flexible_bft`` replica): every endpoint owns a listening
server, outbound traffic goes through per-destination queues with
reconnect-on-failure, and inbound frames land on an inbox queue whose
consumer invokes the registered handler — the same synchronous
``MESSAGE_HANDLERS`` dispatch the simulation uses.

Everything runs on one event loop, so handler code (the unmodified replica
stack) needs no locking: the inbox consumer calls handlers one message at a
time, exactly like the discrete-event scheduler does.

Crash/recover semantics match the simulated :class:`~repro.network.network.Network`:
crashing an endpoint closes its server and live connections and drops queued
traffic in both directions; recovery restarts the server on a **fresh port**
(the address book is updated, and peers' sender loops re-resolve it on
reconnect), which exercises the real reconnect path instead of pretending the
old socket survived.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from repro.transport.codec import CodecError, decode_message, encode_message, frame, read_frame
from repro.types.messages import Message

#: Reconnect backoff: first retry after ``_BACKOFF_FLOOR``s, doubling to cap.
_BACKOFF_FLOOR = 0.05
_BACKOFF_CAP = 1.0


@dataclass
class TransportStats:
    """Counters kept by the transport (mirrors ``NetworkStats``)."""

    messages_sent: int = 0
    bytes_sent: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0
    reconnects: int = 0
    decode_errors: int = 0
    per_type_counts: Dict[str, int] = field(default_factory=dict)

    def record_send(self, message: Message) -> None:
        self.messages_sent += 1
        self.bytes_sent += message.size_bytes
        name = type(message).__name__
        self.per_type_counts[name] = self.per_type_counts.get(name, 0) + 1


class AsyncioTransport:
    """TCP message fabric for an in-process loopback cluster.

    ``register`` is synchronous (matching the seam) and only records the
    handler; sockets come up in :meth:`start`, which binds one listener per
    registered endpoint on an OS-assigned port and publishes the address
    book.  Endpoints registered by node id, addressed by node id — the
    replica stack never sees host/port pairs.
    """

    def __init__(self, host: str = "127.0.0.1") -> None:
        self.host = host
        self.stats = TransportStats()
        self._handlers: Dict[str, Callable[[Message], None]] = {}
        self._addresses: Dict[str, Tuple[str, int]] = {}
        self._servers: Dict[str, asyncio.AbstractServer] = {}
        self._inboxes: Dict[str, asyncio.Queue] = {}
        self._inbox_tasks: Dict[str, asyncio.Task] = {}
        #: (src, dst) -> outbound queue; one sender task per live queue.
        self._outboxes: Dict[Tuple[str, str], asyncio.Queue] = {}
        self._sender_tasks: Dict[Tuple[str, str], asyncio.Task] = {}
        #: Writers of accepted inbound connections, per receiving endpoint,
        #: so crashing an endpoint can sever peers' established connections.
        self._inbound_writers: Dict[str, Set[asyncio.StreamWriter]] = {}
        #: The live outbound connection of each sender loop.  Crash must
        #: close these too: a write to a half-dead socket buffers without
        #: raising, so a peer that kept its stale writer would silently lose
        #: the first messages after the endpoint recovers on a new port.
        self._outbound_writers: Dict[Tuple[str, str], asyncio.StreamWriter] = {}
        self._crashed: Set[str] = set()
        self._started = False
        #: Per-transport message-id counter (ids never travel the wire; each
        #: runtime stamps the messages it first carries or decodes).
        self._message_seq = 0
        #: Handler exceptions surfaced by inbox consumers; the runner
        #: re-raises these so deployment bugs fail runs instead of vanishing
        #: into cancelled-task limbo.
        self.errors: List[BaseException] = []

    # -- seam interface ----------------------------------------------------

    def register(self, node_id: str, handler: Callable[[Message], None]) -> None:
        """Attach an endpoint; its server socket is bound by :meth:`start`."""
        if node_id in self._handlers:
            raise ValueError(f"node {node_id!r} already registered")
        if self._started:
            raise RuntimeError("cannot register endpoints after start()")
        self._handlers[node_id] = handler

    def send(self, src: str, dst: str, message: Message) -> None:
        """Queue one message for delivery (returns immediately)."""
        if src not in self._handlers:
            raise KeyError(f"unknown sender: {src!r}")
        if dst not in self._handlers:
            raise KeyError(f"unknown destination: {dst!r}")
        if src in self._crashed or dst in self._crashed:
            self.stats.messages_dropped += 1
            return
        if message.message_id < 0:
            self._message_seq += 1
            message.message_id = self._message_seq
        self.stats.record_send(message)
        if src == dst:
            # Loopback skips the socket, as the simulated network skips the
            # NIC — but still lands on the inbox queue, preserving
            # handler-at-a-time ordering.
            self._inboxes[src].put_nowait(message)
            return
        self._outbox(src, dst).put_nowait(message)

    def broadcast(
        self, src: str, targets: Iterable[str], message: Message, include_self: bool = False
    ) -> None:
        """Send to every target (optionally looping back to the sender).

        Same self-delivery semantics as the simulator's ``Network.broadcast``
        (``Replica._broadcast`` delegates to whichever backend is wired in):
        the sender only receives its own copy when ``include_self`` is set.
        """
        targets = list(targets)
        for dst in targets:
            if dst == src and not include_self:
                continue
            self.send(src, dst, message)
        if include_self and src not in targets:
            self.send(src, src, message)

    def crash(self, node_id: str) -> None:
        """Take an endpoint off the network: close sockets, drop queues."""
        if node_id not in self._handlers:
            raise KeyError(f"unknown node: {node_id!r}")
        if node_id in self._crashed:
            return
        self._crashed.add(node_id)
        self._addresses.pop(node_id, None)
        server = self._servers.pop(node_id, None)
        if server is not None:
            server.close()
        for writer in self._inbound_writers.pop(node_id, set()):
            writer.close()
        # Undelivered traffic dies with the node, in both directions, and
        # established connections are severed so surviving sender loops
        # reconnect (to the fresh port) instead of writing into a dead socket.
        for (src, dst), queue in self._outboxes.items():
            if node_id in (src, dst):
                self._drain(queue)
        for key in list(self._outbound_writers):
            if node_id in key:
                self._outbound_writers.pop(key).close()
        inbox = self._inboxes.get(node_id)
        if inbox is not None:
            self._drain(inbox)

    def recover(self, node_id: str) -> None:
        """Bring a crashed endpoint back on a fresh port."""
        if node_id not in self._handlers:
            raise KeyError(f"unknown node: {node_id!r}")
        if node_id not in self._crashed:
            return
        self._crashed.discard(node_id)
        if self._started:
            asyncio.get_running_loop().create_task(self._bind(node_id))

    def is_crashed(self, node_id: str) -> bool:
        """True while ``node_id`` is crashed."""
        return node_id in self._crashed

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Bind every registered endpoint and start its inbox consumer."""
        if self._started:
            raise RuntimeError("transport already started")
        self._started = True
        for node_id in self._handlers:
            self._inboxes[node_id] = asyncio.Queue()
            self._inbox_tasks[node_id] = asyncio.get_running_loop().create_task(
                self._consume_inbox(node_id), name=f"inbox:{node_id}"
            )
            await self._bind(node_id)

    async def stop(self) -> None:
        """Tear everything down; safe to call once at the end of a run."""
        tasks = list(self._sender_tasks.values()) + list(self._inbox_tasks.values())
        for task in tasks:
            task.cancel()
        for server in self._servers.values():
            server.close()
        for writers in self._inbound_writers.values():
            for writer in writers:
                writer.close()
        await asyncio.gather(*tasks, return_exceptions=True)
        self._servers.clear()
        self._sender_tasks.clear()
        self._inbox_tasks.clear()

    def address_of(self, node_id: str) -> Optional[Tuple[str, int]]:
        """The (host, port) an endpoint currently listens on, if alive."""
        return self._addresses.get(node_id)

    # -- internals ---------------------------------------------------------

    @staticmethod
    def _drain(queue: asyncio.Queue) -> None:
        while not queue.empty():
            queue.get_nowait()

    def _outbox(self, src: str, dst: str) -> asyncio.Queue:
        key = (src, dst)
        queue = self._outboxes.get(key)
        if queue is None:
            queue = self._outboxes[key] = asyncio.Queue()
        task = self._sender_tasks.get(key)
        if task is None or task.done():
            self._sender_tasks[key] = asyncio.get_running_loop().create_task(
                self._sender_loop(src, dst, queue), name=f"sender:{src}->{dst}"
            )
        return queue

    async def _bind(self, node_id: str) -> None:
        if node_id in self._crashed:
            return
        server = await asyncio.start_server(
            lambda reader, writer: self._accept(node_id, reader, writer),
            host=self.host,
            port=0,
        )
        self._servers[node_id] = server
        address = server.sockets[0].getsockname()[:2]
        self._addresses[node_id] = (address[0], address[1])

    async def _accept(
        self, node_id: str, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        writers = self._inbound_writers.setdefault(node_id, set())
        writers.add(writer)
        try:
            while True:
                payload = await read_frame(reader)
                if payload is None:
                    break
                try:
                    message = decode_message(payload)
                except CodecError:
                    self.stats.decode_errors += 1
                    continue
                if node_id in self._crashed:
                    self.stats.messages_dropped += 1
                    continue
                if message.message_id < 0:
                    self._message_seq += 1
                    message.message_id = self._message_seq
                self._inboxes[node_id].put_nowait(message)
        except (ConnectionError, CodecError, asyncio.CancelledError):
            pass
        finally:
            writers.discard(writer)
            writer.close()

    async def _consume_inbox(self, node_id: str) -> None:
        inbox_ready = self._inboxes[node_id]
        handler = self._handlers[node_id]
        while True:
            message = await inbox_ready.get()
            if node_id in self._crashed:
                self.stats.messages_dropped += 1
                continue
            try:
                handler(message)
                self.stats.messages_delivered += 1
            except asyncio.CancelledError:
                raise
            except BaseException as exc:  # noqa: BLE001 - surfaced to runner
                self.errors.append(exc)

    async def _sender_loop(self, src: str, dst: str, queue: asyncio.Queue) -> None:
        """Ship ``src``'s traffic to ``dst``, reconnecting as needed."""
        writer: Optional[asyncio.StreamWriter] = None
        backoff = _BACKOFF_FLOOR
        try:
            while True:
                message = await queue.get()
                while True:
                    if src in self._crashed or dst in self._crashed:
                        self.stats.messages_dropped += 1
                        break
                    if writer is None or writer.is_closing():
                        address = self._addresses.get(dst)
                        if address is None:
                            self.stats.messages_dropped += 1
                            break
                        try:
                            _, writer = await asyncio.open_connection(*address)
                            self._outbound_writers[(src, dst)] = writer
                            self.stats.reconnects += 1
                            backoff = _BACKOFF_FLOOR
                        except OSError:
                            writer = None
                            await asyncio.sleep(backoff)
                            backoff = min(backoff * 2, _BACKOFF_CAP)
                            continue
                    try:
                        writer.write(frame(encode_message(message)))
                        await writer.drain()
                        break
                    except (ConnectionError, OSError):
                        writer = None  # stale connection; retry this message
        finally:
            self._outbound_writers.pop((src, dst), None)
            if writer is not None:
                writer.close()
