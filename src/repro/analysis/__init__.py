"""Analysis: statistics, tables, figures, and regressions over stored runs.

This subsystem closes the loop the campaign layer opened: campaigns produce
JSONL records (:mod:`repro.experiments`), and analysis turns those records
into the paper's deliverables — **without re-running a single simulation**:

* :mod:`repro.analysis.stats` — group records by campaign/params and collapse
  repetitions into mean / stddev / 95% CI aggregates (Student-t, stdlib);
* :mod:`repro.analysis.report` — cross-protocol comparison tables in text,
  markdown, and CSV (also the canonical table renderer for the CLI and the
  benchmark harness);
* :mod:`repro.analysis.figures` — the paper's figures (8-15, Table II) as
  standalone SVG with error bars, pure stdlib;
* :mod:`repro.analysis.regress` — freeze an aggregate baseline and flag
  metrics that later move outside their confidence interval.

Exposed on the facade as :func:`repro.api.aggregate` / :func:`repro.api.plot`
and on the command line as ``python -m repro report | plot | regress``.
"""

from repro.analysis.figures import (
    ATTACK_PANELS,
    FIGURES,
    FigureDef,
    FigureError,
    compose_grid,
    figure_for_campaign,
    render_chart,
    render_figure,
    render_panels,
    render_store,
)
from repro.analysis.regress import (
    DEFAULT_REGRESS_METRICS,
    BaselineError,
    Finding,
    RegressionReport,
    compare,
    compare_records,
    freeze,
    load_baseline,
    save_baseline,
)
from repro.analysis.report import (
    comparison_table,
    csv_table,
    format_cell,
    format_measure,
    format_table,
    markdown_table,
    render,
    summary_rows,
)
from repro.analysis.stats import (
    Aggregate,
    GroupSummary,
    aggregate_records,
    aggregate_rows,
    t_critical,
)

__all__ = [
    "ATTACK_PANELS",
    "FIGURES",
    "Aggregate",
    "BaselineError",
    "DEFAULT_REGRESS_METRICS",
    "FigureDef",
    "FigureError",
    "Finding",
    "GroupSummary",
    "RegressionReport",
    "aggregate_records",
    "aggregate_rows",
    "compare",
    "compare_records",
    "comparison_table",
    "compose_grid",
    "csv_table",
    "figure_for_campaign",
    "format_cell",
    "format_measure",
    "format_table",
    "freeze",
    "load_baseline",
    "markdown_table",
    "render",
    "render_chart",
    "render_figure",
    "render_panels",
    "render_store",
    "save_baseline",
    "summary_rows",
    "t_critical",
]
