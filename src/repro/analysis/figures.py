"""Paper figures rendered as standalone SVG from stored campaign records.

The paper's evaluation is figures 8-15 plus Table II — every one a
cross-protocol comparison.  This module renders them from
:class:`~repro.experiments.store.ResultStore` records (or in-memory campaign
records) with 95%-CI error bars across repetitions, **without executing a
single simulation**: the records are aggregated through
:mod:`repro.analysis.stats` and drawn with a small pure-stdlib SVG line-chart
kit (no matplotlib — the container has none, and SVG text diffs cleanly in
review).

Each :class:`FigureDef` names the campaign prefix it renders (``fig9`` for
any campaign called ``fig9*``), the axes matching the corresponding
``benchmarks/bench_*.py`` module, and how series are labelled from the
records' params.  Campaigns without a registered figure fall back to a
generic throughput chart, or to explicit ``x``/``y`` choices via the CLI
(``python -m repro plot --x concurrency --y throughput_tps``).
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.analysis.stats import GroupSummary, aggregate_records

#: Okabe-Ito colorblind-safe palette (series cycle through it).
PALETTE = (
    "#0072B2",  # blue
    "#E69F00",  # orange
    "#009E73",  # green
    "#D55E00",  # vermillion
    "#CC79A7",  # purple
    "#56B4E9",  # sky
    "#F0E442",  # yellow
    "#000000",  # black
)

_FONT = "font-family=\"Helvetica,Arial,sans-serif\""


class FigureError(ValueError):
    """The records cannot be rendered with the requested figure definition."""


@dataclass(frozen=True)
class FigureDef:
    """How one paper figure maps stored records onto chart axes."""

    key: str
    title: str
    xlabel: str
    ylabel: str
    #: Params key giving a point's x value, or ``"metric:<name>"`` to plot
    #: one measured metric against another (the throughput/latency curves).
    x: str
    #: Metric name giving a point's y value (error bars from its 95% CI).
    y: str
    #: Display scaling of the y metric (1e3 turns seconds into ms).
    y_scale: float = 1.0
    #: Params keys joined into the series label; ``None`` picks the first
    #: present of ``_series`` / ``_label`` / ``_arm`` / ``protocol``.
    series_keys: Optional[Tuple[str, ...]] = None
    #: Plot the per-record throughput timeline instead of one point per group.
    timeline: bool = False
    #: Treat x values as category labels (evenly spaced, e.g. ablation arms).
    categorical: bool = False
    #: Extra ``(metric, ylabel, y_scale)`` panels.  When set, the figure
    #: renders as a grid of sub-charts sharing the x axis — one panel per
    #: entry — instead of the single ``y`` chart.  Panels whose metric is
    #: absent from every record are skipped (at least one must render).
    panels: Optional[Tuple[Tuple[str, str, float], ...]] = None
    #: Render from *trace* records (repro.obs) instead of campaign records:
    #: the per-replica view-timeline lane chart.
    trace: bool = False


#: The four headline metrics of the attack figures (13 and 14).  The paper
#: plots one metric per figure; rendering all four as panels shows the whole
#: degradation profile — an attack that leaves throughput intact can still
#: stretch latency or stall chain growth.
ATTACK_PANELS: Tuple[Tuple[str, str, float], ...] = (
    ("throughput_tps", "throughput (Tx/s)", 1.0),
    ("mean_latency", "mean latency (ms)", 1e3),
    ("chain_growth_rate", "chain growth rate (blocks/s)", 1.0),
    ("block_interval", "block interval (s)", 1.0),
)

#: The registered paper figures, keyed by campaign-name prefix.
FIGURES: Dict[str, FigureDef] = {
    fig.key: fig
    for fig in (
        FigureDef(
            key="fig8",
            title="Fig. 8 — model vs. implementation",
            xlabel="arrival rate (Tx/s)", ylabel="mean latency (ms)",
            x="arrival_rate", y="mean_latency", y_scale=1e3,
            # "mode" splits the simulated and deployed runs of one config
            # into separate curves — the figure's model-vs-implementation
            # axis regenerated from actual runs of both.
            series_keys=("_config", "protocol", "mode"),
        ),
        FigureDef(
            key="fig9",
            title="Fig. 9 — throughput vs. latency by block size",
            xlabel="throughput (Tx/s)", ylabel="mean latency (ms)",
            x="metric:throughput_tps", y="mean_latency", y_scale=1e3,
        ),
        FigureDef(
            key="fig10",
            title="Fig. 10 — throughput vs. latency by payload size",
            xlabel="throughput (Tx/s)", ylabel="mean latency (ms)",
            x="metric:throughput_tps", y="mean_latency", y_scale=1e3,
        ),
        FigureDef(
            key="fig11",
            title="Fig. 11 — throughput vs. latency under added delay",
            xlabel="throughput (Tx/s)", ylabel="mean latency (ms)",
            x="metric:throughput_tps", y="mean_latency", y_scale=1e3,
        ),
        FigureDef(
            key="fig12",
            title="Fig. 12 — scalability",
            xlabel="cluster size (replicas)", ylabel="throughput (Tx/s)",
            x="num_nodes", y="throughput_tps",
        ),
        FigureDef(
            key="fig13",
            title="Fig. 13 — forking attack",
            xlabel="Byzantine replicas", ylabel="chain growth rate",
            x="byzantine_nodes", y="chain_growth_rate",
            panels=ATTACK_PANELS,
        ),
        FigureDef(
            key="fig14",
            title="Fig. 14 — silence attack",
            xlabel="Byzantine replicas", ylabel="throughput (Tx/s)",
            x="byzantine_nodes", y="throughput_tps",
            panels=ATTACK_PANELS,
        ),
        FigureDef(
            key="fig15",
            title="Fig. 15 — responsiveness timeline",
            xlabel="time (s)", ylabel="throughput (Tx/s)",
            x="time", y="throughput_tps", timeline=True,
        ),
        FigureDef(
            key="table2",
            title="Table II — arrival rate vs. throughput",
            xlabel="arrival rate (Tx/s)", ylabel="throughput (Tx/s)",
            x="arrival_rate", y="throughput_tps",
        ),
        FigureDef(
            key="ablation",
            title="Ablation — design choices",
            xlabel="arm", ylabel="throughput (Tx/s)",
            x="_arm", y="throughput_tps", categorical=True,
        ),
        FigureDef(
            key="view_timeline",
            title="View timeline — per-replica views by outcome",
            xlabel="time (s)", ylabel="replica",
            x="time", y="view", trace=True,
        ),
    )
}

_GENERIC = FigureDef(
    key="generic",
    title="campaign", xlabel="group", ylabel="throughput (Tx/s)",
    x="", y="throughput_tps", categorical=True,
)


def figure_for_campaign(name: str) -> Optional[FigureDef]:
    """The registered figure whose key prefixes the campaign name, if any."""
    for key, fig in FIGURES.items():
        if name == key or name.startswith(key):
            return fig
    return None


# ----------------------------------------------------------------------
# chart model
# ----------------------------------------------------------------------
@dataclass
class ChartPoint:
    x: float
    y: float
    err: float = 0.0


@dataclass
class ChartSeries:
    label: str
    points: List[ChartPoint] = field(default_factory=list)


def _series_label(summary: GroupSummary, keys: Optional[Tuple[str, ...]]) -> str:
    if keys is None:
        for candidate in ("_series", "_label", "_arm", "protocol"):
            if candidate in summary.params:
                return str(summary.params[candidate])
        return summary.label() or summary.campaign or "series"
    present = [str(summary.params[k]) for k in keys if k in summary.params]
    return " ".join(present) if present else summary.label()


def build_series(
    summaries: Sequence[GroupSummary], figure: FigureDef
) -> Tuple[List[ChartSeries], List[str]]:
    """Turn aggregated groups into chart series per the figure definition.

    Returns ``(series, x_categories)`` — categories are empty for numeric x.
    Points keep first-seen (expansion) order within each series, which is
    what makes the throughput/latency curves trace the load sweep.
    """
    series: Dict[str, ChartSeries] = {}
    categories: List[str] = []
    skipped = 0
    for summary in summaries:
        if figure.timeline:
            if not summary.timeline:
                skipped += 1
                continue
            label = _series_label(summary, figure.series_keys)
            line = series.setdefault(label, ChartSeries(label=label))
            for t, mean, ci in summary.timeline:
                line.points.append(ChartPoint(x=t, y=mean, err=ci))
            continue

        agg = summary.metrics.get(figure.y)
        if agg is None:
            skipped += 1
            continue
        shown = agg.scaled(figure.y_scale)

        if figure.categorical:
            category = str(summary.params.get(figure.x, summary.label())) if figure.x else summary.label()
            if category not in categories:
                categories.append(category)
            x_value: float = float(categories.index(category))
            label = figure.ylabel if figure.key in ("ablation", "generic") else _series_label(summary, figure.series_keys)
        elif figure.x.startswith("metric:"):
            x_metric = summary.metrics.get(figure.x[len("metric:"):])
            if x_metric is None:
                skipped += 1
                continue
            x_value = x_metric.mean
            label = _series_label(summary, figure.series_keys)
        else:
            raw = summary.params.get(figure.x)
            if not isinstance(raw, (int, float)) or isinstance(raw, bool):
                skipped += 1
                continue
            x_value = float(raw)
            label = _series_label(summary, figure.series_keys)

        series.setdefault(label, ChartSeries(label=label)).points.append(
            ChartPoint(x=x_value, y=shown.mean, err=shown.ci95)
        )
    if not series:
        raise FigureError(
            f"no plottable groups for figure {figure.key!r} "
            f"({skipped} group(s) lacked {figure.x!r}/{figure.y!r})"
        )
    return list(series.values()), categories


# ----------------------------------------------------------------------
# SVG rendering (pure stdlib)
# ----------------------------------------------------------------------
def _escape(text: str) -> str:
    return (
        str(text).replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
        .replace('"', "&quot;")
    )


def _nice_ticks(lo: float, hi: float, target: int = 5) -> List[float]:
    """Round tick positions covering [lo, hi] (classic nice-number steps)."""
    if hi <= lo:
        hi = lo + (abs(lo) or 1.0)
    span = hi - lo
    raw = span / max(target, 1)
    magnitude = 10.0 ** math.floor(math.log10(raw))
    step = next(m * magnitude for m in (1.0, 2.0, 2.5, 5.0, 10.0) if m * magnitude >= raw)
    first = math.floor(lo / step) * step
    ticks = []
    value = first
    while value <= hi + step * 1e-9:
        ticks.append(0.0 if abs(value) < step * 1e-9 else value)
        value += step
    return ticks


def _tick_label(value: float) -> str:
    if value == int(value) and abs(value) < 1e7:
        return str(int(value))
    return f"{value:g}"


def render_chart(
    series: Sequence[ChartSeries],
    title: str,
    xlabel: str,
    ylabel: str,
    x_categories: Sequence[str] = (),
    width: int = 720,
    height: int = 440,
) -> str:
    """Render chart series as a standalone SVG document (error bars + legend)."""
    if not series or all(not s.points for s in series):
        raise FigureError("nothing to render: every series is empty")
    height = max(height, 140 + 18 * len(series))

    xs = [p.x for s in series for p in s.points]
    ys_lo = [p.y - p.err for s in series for p in s.points]
    ys_hi = [p.y + p.err for s in series for p in s.points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(0.0, min(ys_lo)), max(ys_hi)
    if x_hi == x_lo:
        x_lo, x_hi = x_lo - 0.5, x_hi + 0.5
    if y_hi == y_lo:
        y_hi = y_lo + (abs(y_lo) or 1.0)

    left, right, top, bottom = 72, 200, 48, 64
    plot_w, plot_h = width - left - right, height - top - bottom
    if x_categories:
        x_ticks = list(range(len(x_categories)))
        x_lo, x_hi = -0.5, len(x_categories) - 0.5
    else:
        pad = 0.04 * (x_hi - x_lo)
        x_lo, x_hi = x_lo - pad, x_hi + pad
        x_ticks = [t for t in _nice_ticks(x_lo, x_hi) if x_lo <= t <= x_hi]
    y_ticks = [t for t in _nice_ticks(y_lo, y_hi) if y_lo <= t <= y_hi * 1.001]
    y_hi = max(y_hi, y_ticks[-1] if y_ticks else y_hi)

    def sx(x: float) -> float:
        return left + (x - x_lo) / (x_hi - x_lo) * plot_w

    def sy(y: float) -> float:
        return top + plot_h - (y - y_lo) / (y_hi - y_lo) * plot_h

    out: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
        f'<text x="{left}" y="24" {_FONT} font-size="15" font-weight="bold">'
        f"{_escape(title)}</text>",
    ]

    # gridlines + axes + tick labels
    for t in y_ticks:
        y = sy(t)
        out.append(f'<line x1="{left}" y1="{y:.1f}" x2="{left + plot_w}" y2="{y:.1f}" '
                   f'stroke="#dddddd" stroke-width="1"/>')
        out.append(f'<text x="{left - 8}" y="{y + 4:.1f}" {_FONT} font-size="11" '
                   f'text-anchor="end">{_escape(_tick_label(t))}</text>')
    if x_categories:
        for i, name in enumerate(x_categories):
            x = sx(float(i))
            shown = name if len(name) <= 20 else name[:19] + "…"
            out.append(
                f'<text x="{x:.1f}" y="{top + plot_h + 14}" {_FONT} font-size="10" '
                f'text-anchor="end" transform="rotate(-20 {x:.1f} {top + plot_h + 14})">'
                f"{_escape(shown)}</text>"
            )
    else:
        for t in x_ticks:
            x = sx(t)
            out.append(f'<line x1="{x:.1f}" y1="{top + plot_h}" x2="{x:.1f}" '
                       f'y2="{top + plot_h + 4}" stroke="#333333" stroke-width="1"/>')
            out.append(f'<text x="{x:.1f}" y="{top + plot_h + 17}" {_FONT} font-size="11" '
                       f'text-anchor="middle">{_escape(_tick_label(t))}</text>')
    out.append(f'<line x1="{left}" y1="{top}" x2="{left}" y2="{top + plot_h}" '
               f'stroke="#333333" stroke-width="1.2"/>')
    out.append(f'<line x1="{left}" y1="{top + plot_h}" x2="{left + plot_w}" '
               f'y2="{top + plot_h}" stroke="#333333" stroke-width="1.2"/>')
    out.append(f'<text x="{left + plot_w / 2:.1f}" y="{height - 14}" {_FONT} '
               f'font-size="12" text-anchor="middle">{_escape(xlabel)}</text>')
    out.append(f'<text x="20" y="{top + plot_h / 2:.1f}" {_FONT} font-size="12" '
               f'text-anchor="middle" transform="rotate(-90 20 {top + plot_h / 2:.1f})">'
               f"{_escape(ylabel)}</text>")

    # series: error band/bars, line, markers
    dense_cutoff = 30
    for index, line in enumerate(series):
        color = PALETTE[index % len(PALETTE)]
        points = line.points
        if not points:
            continue
        dense = len(points) > dense_cutoff
        if dense and any(p.err > 0 for p in points):
            upper = " ".join(f"{sx(p.x):.1f},{sy(p.y + p.err):.1f}" for p in points)
            lower = " ".join(f"{sx(p.x):.1f},{sy(p.y - p.err):.1f}" for p in reversed(points))
            out.append(f'<polygon points="{upper} {lower}" fill="{color}" '
                       f'fill-opacity="0.15" stroke="none"/>')
        if len(points) > 1:
            path = " ".join(f"{sx(p.x):.1f},{sy(p.y):.1f}" for p in points)
            out.append(f'<polyline points="{path}" fill="none" stroke="{color}" '
                       f'stroke-width="1.8"/>')
        for p in points:
            x, y = sx(p.x), sy(p.y)
            if p.err > 0 and not dense:
                y0, y1 = sy(p.y - p.err), sy(p.y + p.err)
                out.append(f'<line x1="{x:.1f}" y1="{y0:.1f}" x2="{x:.1f}" y2="{y1:.1f}" '
                           f'stroke="{color}" stroke-width="1.2"/>')
                for cap in (y0, y1):
                    out.append(f'<line x1="{x - 3:.1f}" y1="{cap:.1f}" x2="{x + 3:.1f}" '
                               f'y2="{cap:.1f}" stroke="{color}" stroke-width="1.2"/>')
            if not dense:
                out.append(f'<circle cx="{x:.1f}" cy="{y:.1f}" r="3" fill="{color}"/>')

    # legend
    legend_x = left + plot_w + 16
    for index, line in enumerate(series):
        color = PALETTE[index % len(PALETTE)]
        y = top + 8 + index * 18
        out.append(f'<line x1="{legend_x}" y1="{y}" x2="{legend_x + 18}" y2="{y}" '
                   f'stroke="{color}" stroke-width="2.5"/>')
        out.append(f'<text x="{legend_x + 24}" y="{y + 4}" {_FONT} font-size="11">'
                   f"{_escape(line.label)}</text>")

    out.append("</svg>")
    return "\n".join(out)


# ----------------------------------------------------------------------
# multi-panel composition
# ----------------------------------------------------------------------
_SVG_SIZE = re.compile(r'width="(\d+)" height="(\d+)"')


def compose_grid(
    cells: Sequence[str], title: str = "", columns: int = 2
) -> str:
    """Compose standalone SVG documents into one grid figure.

    Each cell keeps its own coordinate system: the documents are embedded
    as nested ``<svg x= y=>`` elements, so a cell's internal layout (axes,
    legend) is untouched.  Rows are as tall as their tallest cell, columns
    as wide as the widest cell, and an optional title banner sits on top.
    """
    if not cells:
        raise FigureError("nothing to compose: no panel cells")
    columns = max(1, min(columns, len(cells)))
    sizes = []
    for cell in cells:
        match = _SVG_SIZE.search(cell)
        if match is None:
            raise FigureError("panel cell is not a sized SVG document")
        sizes.append((int(match.group(1)), int(match.group(2))))

    rows = [list(range(i, min(i + columns, len(cells)))) for i in range(0, len(cells), columns)]
    col_w = [
        max((sizes[i][0] for row in rows for i in row[c:c + 1]), default=0)
        for c in range(columns)
    ]
    row_h = [max(sizes[i][1] for i in row) for row in rows]
    banner = 36 if title else 0
    width = sum(col_w)
    height = banner + sum(row_h)

    out: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    if title:
        out.append(
            f'<text x="{width / 2:.1f}" y="24" {_FONT} font-size="16" '
            f'font-weight="bold" text-anchor="middle">{_escape(title)}</text>'
        )
    y = banner
    for row, h in zip(rows, row_h):
        x = 0
        for column, i in enumerate(row):
            # Nested <svg> accepts x/y placement; the cell's own width,
            # height, and viewBox keep its internal layout intact.
            out.append(cells[i].replace("<svg ", f'<svg x="{x}" y="{y}" ', 1))
            x += col_w[column]
        y += h
    out.append("</svg>")
    return "\n".join(out)


def render_panels(
    summaries: Sequence[GroupSummary],
    figure: FigureDef,
    title: str,
    columns: int = 2,
) -> str:
    """Render a paneled figure: one sub-chart per ``figure.panels`` entry.

    Panels whose metric no record carries are skipped silently (older
    stores may predate a metric); if *every* panel is empty the error
    from the last panel propagates, naming what was missing.
    """
    if not figure.panels:
        raise FigureError(f"figure {figure.key!r} defines no panels")
    cells: List[str] = []
    error: Optional[FigureError] = None
    for metric, ylabel, scale in figure.panels:
        sub = replace(figure, y=metric, ylabel=ylabel, y_scale=scale, panels=None)
        try:
            series, categories = build_series(summaries, sub)
        except FigureError as exc:
            error = exc
            continue
        cells.append(
            render_chart(
                series,
                title=ylabel,
                xlabel=figure.xlabel,
                ylabel=ylabel,
                x_categories=categories,
                width=600,
                height=380,
            )
        )
    if not cells:
        raise error if error is not None else FigureError("no panels rendered")
    return compose_grid(cells, title=title, columns=columns)


# ----------------------------------------------------------------------
# trace view-timeline (repro.obs)
# ----------------------------------------------------------------------
#: View-span fill by outcome (Okabe-Ito members for the two active states).
_OUTCOME_FILL = {
    "committed": "#009E73",  # green
    "timeout": "#D55E00",    # vermillion
    "idle": "#bbbbbb",       # grey
}


def render_view_timeline(
    trace_records: Sequence,
    title: str = "View timeline — per-replica views by outcome",
    width: int = 860,
) -> str:
    """Render trace records as a per-replica lane chart (standalone SVG).

    One horizontal lane per replica; each view the replica entered is a
    rectangle coloured by its outcome (committed / timeout / idle), commit
    events are tick markers on the lane, and scenario fault events are
    dashed vertical rules across every lane, labelled at the top.  Input is
    a sequence of :class:`repro.obs.TraceRecord` (or equivalent 6-tuples),
    e.g. ``Tracer.records()`` or the rows of a parsed JSONL trace.
    """
    from repro.obs.trace import TraceRecord
    from repro.obs.export import view_spans

    records = [
        r if isinstance(r, TraceRecord) else TraceRecord(*r) for r in trace_records
    ]
    if not records:
        raise FigureError("nothing to render: the trace is empty")
    spans = view_spans(records)
    faults = [r for r in records if r.category == "fault"]
    commits: Dict[str, List[float]] = {}
    for record in records:
        if record.category == "commit":
            commits.setdefault(record.replica, []).append(record.t)
    lanes = sorted(set(spans) | set(commits))
    if not lanes:
        # A trace of only faults/net records still gets a (single-lane) axis.
        lanes = sorted({r.replica for r in records})
    t_lo = min(r.t for r in records)
    t_hi = max(r.t for r in records)
    if t_hi <= t_lo:
        t_hi = t_lo + 1e-6

    lane_h, lane_gap = 26, 10
    left, right, top, bottom = 84, 24, 56, 84
    plot_w = width - left - right
    plot_h = len(lanes) * (lane_h + lane_gap) - lane_gap
    height = top + plot_h + bottom

    def sx(t: float) -> float:
        return left + (t - t_lo) / (t_hi - t_lo) * plot_w

    out: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
        f'<text x="{left}" y="24" {_FONT} font-size="15" font-weight="bold">'
        f"{_escape(title)}</text>",
    ]

    lane_y = {
        replica: top + i * (lane_h + lane_gap) for i, replica in enumerate(lanes)
    }
    for replica, y in lane_y.items():
        out.append(
            f'<text x="{left - 8}" y="{y + lane_h / 2 + 4:.1f}" {_FONT} '
            f'font-size="11" text-anchor="end">{_escape(replica)}</text>'
        )
        out.append(
            f'<rect x="{left}" y="{y}" width="{plot_w}" height="{lane_h}" '
            f'fill="#f4f4f4" stroke="none"/>'
        )
        for span in spans.get(replica, ()):
            x0, x1 = sx(span["start"]), sx(span["end"])
            fill = _OUTCOME_FILL.get(span["outcome"], "#bbbbbb")
            out.append(
                f'<rect x="{x0:.1f}" y="{y + 1}" width="{max(x1 - x0, 0.8):.1f}" '
                f'height="{lane_h - 2}" fill="{fill}" fill-opacity="0.85" '
                f'stroke="white" stroke-width="0.5">'
                f"<title>view {span['view']}: {span['outcome']}</title></rect>"
            )
        for t in commits.get(replica, ()):
            x = sx(t)
            out.append(
                f'<line x1="{x:.1f}" y1="{y + 2}" x2="{x:.1f}" y2="{y + lane_h - 2}" '
                f'stroke="#000000" stroke-width="1.4"/>'
            )

    for fault in faults:
        x = sx(fault.t)
        out.append(
            f'<line x1="{x:.1f}" y1="{top - 6}" x2="{x:.1f}" y2="{top + plot_h + 6}" '
            f'stroke="#CC79A7" stroke-width="1.4" stroke-dasharray="4,3"/>'
        )
        label = fault.kind if fault.replica == "cluster" else f"{fault.kind} {fault.replica}"
        out.append(
            f'<text x="{x + 3:.1f}" y="{top - 10}" {_FONT} font-size="10" '
            f'fill="#CC79A7">{_escape(label)}</text>'
        )

    axis_y = top + plot_h + 8
    out.append(
        f'<line x1="{left}" y1="{axis_y}" x2="{left + plot_w}" y2="{axis_y}" '
        f'stroke="#333333" stroke-width="1.2"/>'
    )
    for t in _nice_ticks(t_lo, t_hi):
        if t < t_lo or t > t_hi:
            continue
        x = sx(t)
        out.append(
            f'<line x1="{x:.1f}" y1="{axis_y}" x2="{x:.1f}" y2="{axis_y + 4}" '
            f'stroke="#333333" stroke-width="1"/>'
        )
        out.append(
            f'<text x="{x:.1f}" y="{axis_y + 17}" {_FONT} font-size="11" '
            f'text-anchor="middle">{_escape(_tick_label(t))}</text>'
        )
    out.append(
        f'<text x="{left + plot_w / 2:.1f}" y="{height - 36}" {_FONT} '
        f'font-size="12" text-anchor="middle">time (s)</text>'
    )

    legend_items = [
        ("committed", _OUTCOME_FILL["committed"]),
        ("timeout", _OUTCOME_FILL["timeout"]),
        ("idle", _OUTCOME_FILL["idle"]),
    ]
    x = left
    y = height - 16
    for label, color in legend_items:
        out.append(f'<rect x="{x}" y="{y - 9}" width="12" height="10" fill="{color}"/>')
        out.append(f'<text x="{x + 16}" y="{y}" {_FONT} font-size="11">{label}</text>')
        x += 100
    out.append(f'<line x1="{x}" y1="{y - 8}" x2="{x}" y2="{y}" stroke="#000000" stroke-width="1.4"/>')
    out.append(f'<text x="{x + 6}" y="{y}" {_FONT} font-size="11">commit</text>')
    x += 100
    out.append(
        f'<line x1="{x}" y1="{y - 8}" x2="{x}" y2="{y}" stroke="#CC79A7" '
        f'stroke-width="1.4" stroke-dasharray="4,3"/>'
    )
    out.append(f'<text x="{x + 6}" y="{y}" {_FONT} font-size="11">fault</text>')

    out.append("</svg>")
    return "\n".join(out)


# ----------------------------------------------------------------------
# high-level entry points
# ----------------------------------------------------------------------
def render_figure(
    records: Iterable[Dict[str, Any]],
    figure: Optional[Union[FigureDef, str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render one campaign's records as an SVG figure.

    ``figure`` may be a :class:`FigureDef`, a registry key (``"fig9"``), or
    ``None`` to resolve from the records' campaign name (generic fallback
    when nothing matches).  Records are aggregated first, so repetitions
    become 95%-CI error bars; no simulation is ever executed.
    """
    records = list(records)
    if not records:
        raise FigureError("no records to render")
    if isinstance(figure, str):
        if figure not in FIGURES:
            raise FigureError(
                f"unknown figure {figure!r}; known: {', '.join(sorted(FIGURES))}"
            )
        figure = FIGURES[figure]
    if figure is not None and figure.trace:
        # Trace figures consume repro.obs trace records, not campaign records.
        return render_view_timeline(records, title=title or figure.title)
    campaign = records[0].get("campaign", "")
    if figure is None:
        figure = figure_for_campaign(campaign) or replace(_GENERIC, title=campaign or "campaign")
    summaries = aggregate_records(records)
    shown_title = (
        title or f"{figure.title} — {campaign}"
        if campaign and campaign != figure.title
        else (title or figure.title)
    )
    if figure.panels:
        return render_panels(summaries, figure, title=shown_title)
    series, categories = build_series(summaries, figure)
    return render_chart(
        series,
        title=shown_title,
        xlabel=figure.xlabel,
        ylabel=figure.ylabel,
        x_categories=categories,
    )


def render_store(
    store,
    out_dir: Union[str, Path],
    campaigns: Optional[Sequence[str]] = None,
    figure: Optional[Union[FigureDef, str]] = None,
) -> List[Path]:
    """Render every (selected) campaign in a result store to ``out_dir``.

    Returns the written SVG paths, one per campaign with plottable records.
    ``figure`` forces one definition for every selected campaign; by default
    each campaign resolves through :func:`figure_for_campaign`.
    """
    out = Path(out_dir)
    names: List[str] = []
    for record in store:
        name = record.get("campaign", "")
        if name not in names:
            names.append(name)
    if campaigns:
        missing = [c for c in campaigns if c not in names]
        if missing:
            raise FigureError(
                f"campaign(s) not in store: {', '.join(missing)} "
                f"(stored: {', '.join(names) or 'none'})"
            )
        names = list(campaigns)
    written: List[Path] = []
    out.mkdir(parents=True, exist_ok=True)
    for name in names:
        svg = render_figure(store.records(campaign=name), figure=figure)
        path = out / f"{name or 'campaign'}.svg"
        path.write_text(svg + "\n")
        written.append(path)
    return written
