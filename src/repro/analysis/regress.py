"""Regression reporting: freeze an aggregate baseline, compare later runs.

The perf/quality trajectory of this repo needs a memory: a *baseline* is the
aggregated summary of one campaign (per-group, per-metric mean ± 95% CI)
frozen as JSON.  A later campaign over the same grid is compared group by
group: a metric **regresses** when its new mean lands outside the wider of
the two confidence intervals (plus an optional relative tolerance for
unrepeated runs, whose CIs are degenerate).  The comparison is directionless
by default — a metric that *improved* outside its CI is also flagged, since
for most of these metrics (chain growth rate, block interval, consistency)
any unexplained movement means behaviour changed.

Two refinements serve CI gating:

* **per-metric tolerances** (``tolerances={"mean_latency": 0.1}``) override
  the global relative tolerance for metrics with different noise floors;
* **policies** make selected metrics one-sided.  ``"ratchet-up"`` (the
  default for ``events_per_second``) flags only a *drop* beyond the allowed
  slack: a perf win passes the gate — and CI latches it by re-freezing the
  baseline — while a perf loss fails.  ``"ratchet-down"`` is the mirror for
  metrics where smaller is better.

``python -m repro regress`` wires this up: ``--freeze`` writes the baseline,
a later invocation compares and exits non-zero when anything moved.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.analysis.stats import Aggregate, GroupSummary, aggregate_records

BASELINE_VERSION = 1

#: Metrics compared by default: the paper's headline comparison set.  The
#: bookkeeping counters (committed transactions, sync bytes, ...) scale with
#: run length and grid shape and would flag on every legitimate change.
DEFAULT_REGRESS_METRICS = (
    "throughput_tps",
    "mean_latency",
    "p99_latency",
    "chain_growth_rate",
    "block_interval",
)

#: Comparison policies.  "two-sided" flags any movement beyond the allowed
#: slack; "ratchet-up" flags only drops (bigger is better, wins latch);
#: "ratchet-down" flags only rises (smaller is better).
POLICIES = ("two-sided", "ratchet-up", "ratchet-down")

#: Per-metric policy defaults.  Host-perf throughput is the one metric where
#: improvement is never suspicious — only a slowdown should fail a gate.
DEFAULT_POLICIES = {
    "events_per_second": "ratchet-up",
}


class BaselineError(ValueError):
    """A baseline file is malformed or does not match the compared records."""


def freeze(
    summaries: Sequence[GroupSummary],
    metrics: Sequence[str] = DEFAULT_REGRESS_METRICS,
) -> Dict[str, Any]:
    """Freeze aggregated summaries into a JSON-compatible baseline dict."""
    groups = []
    for summary in summaries:
        kept = {name: agg.to_dict() for name, agg in summary.metrics.items()
                if name in metrics}
        groups.append({
            "campaign": summary.campaign,
            "params": dict(summary.params),
            "n": summary.n,
            "metrics": kept,
        })
    return {"version": BASELINE_VERSION, "metrics": list(metrics), "groups": groups}


def save_baseline(path: Union[str, Path], baseline: Dict[str, Any]) -> Path:
    """Write a baseline dict as pretty JSON; returns the path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(baseline, indent=2, sort_keys=True) + "\n")
    return target


def load_baseline(path: Union[str, Path]) -> Dict[str, Any]:
    """Load and sanity-check a baseline written by :func:`save_baseline`."""
    target = Path(path)
    try:
        data = json.loads(target.read_text())
    except FileNotFoundError:
        raise BaselineError(f"no such baseline: {target}")
    except json.JSONDecodeError as exc:
        raise BaselineError(f"{target} is not valid JSON: {exc}")
    if not isinstance(data, dict) or "groups" not in data:
        raise BaselineError(f"{target} is not a regression baseline (no 'groups')")
    return data


def _params_key(campaign: str, params: Dict[str, Any]) -> str:
    body = json.dumps(params, sort_keys=True, separators=(",", ":"), default=str)
    return f"{campaign}:{body}"


@dataclass
class Finding:
    """One metric of one group, compared against its frozen baseline."""

    campaign: str
    params: Dict[str, Any]
    metric: str
    baseline: Aggregate
    current: Aggregate
    #: The movement the CIs (and tolerance) allowed without flagging.
    allowed: float
    regressed: bool
    #: The comparison policy this finding was judged under.
    policy: str = "two-sided"

    @property
    def delta(self) -> float:
        return self.current.mean - self.baseline.mean

    @property
    def improved(self) -> bool:
        """True when a ratcheted metric moved in its good direction."""
        if self.policy == "ratchet-up":
            return self.delta > self.allowed
        if self.policy == "ratchet-down":
            return -self.delta > self.allowed
        return False

    def describe(self) -> str:
        label = " ".join(f"{k.lstrip('_')}={v}" for k, v in self.params.items()) or "-"
        direction = "rose" if self.delta > 0 else "fell"
        note = "" if self.policy == "two-sided" else f", policy {self.policy}"
        return (
            f"{self.campaign} [{label}] {self.metric}: "
            f"{self.baseline.mean:.4g} -> {self.current.mean:.4g} "
            f"({direction} by {abs(self.delta):.4g}, allowed ±{self.allowed:.4g}{note})"
        )


@dataclass
class RegressionReport:
    """Outcome of comparing a campaign's aggregates against a baseline."""

    findings: List[Finding] = field(default_factory=list)
    #: Baseline groups with no counterpart in the compared records.
    missing: List[str] = field(default_factory=list)
    #: Compared groups that were not in the baseline (informational).
    unmatched: List[str] = field(default_factory=list)
    compared_groups: int = 0

    @property
    def regressions(self) -> List[Finding]:
        return [f for f in self.findings if f.regressed]

    @property
    def improvements(self) -> List[Finding]:
        """Ratcheted metrics that beat their baseline (worth re-freezing)."""
        return [f for f in self.findings if f.improved]

    @property
    def ok(self) -> bool:
        """True when nothing moved outside its CI and no group disappeared."""
        return not self.regressions and not self.missing

    def render(self) -> str:
        lines = [
            f"compared {self.compared_groups} group(s), "
            f"{len(self.findings)} metric(s): "
            f"{len(self.regressions)} outside their confidence interval"
        ]
        for finding in self.regressions:
            lines.append(f"  REGRESSED  {finding.describe()}")
        for finding in self.improvements:
            lines.append(f"  improved   {finding.describe()}")
        for key in self.missing:
            lines.append(f"  MISSING    baseline group not in records: {key}")
        for key in self.unmatched:
            lines.append(f"  new        group not in baseline (ignored): {key}")
        if self.ok:
            lines.append("ok: every compared metric within its confidence interval")
        return "\n".join(lines)


def compare(
    baseline: Dict[str, Any],
    summaries: Sequence[GroupSummary],
    metrics: Optional[Sequence[str]] = None,
    tolerance: float = 0.0,
    tolerances: Optional[Dict[str, float]] = None,
    policies: Optional[Dict[str, str]] = None,
) -> RegressionReport:
    """Compare aggregated summaries against a frozen baseline.

    A metric is flagged when its mean moves beyond
    ``max(old ci95, new ci95, tol * |old mean|)`` where ``tol`` is the
    metric's entry in ``tolerances`` (falling back to the global
    ``tolerance``) — i.e. it moved outside both runs' 95% confidence
    intervals.  Tolerance is the relative slack that keeps
    single-repetition baselines (degenerate CIs) usable; leave it 0 for
    strict repeated-run comparisons.

    ``policies`` maps metric names to one of :data:`POLICIES`; metrics
    absent from it use :data:`DEFAULT_POLICIES`, then "two-sided".  Under a
    ratchet policy only movement in the bad direction flags.
    """
    chosen = list(metrics) if metrics is not None else list(
        baseline.get("metrics", DEFAULT_REGRESS_METRICS)
    )
    tolerances = tolerances or {}
    effective_policies = dict(DEFAULT_POLICIES)
    if policies:
        effective_policies.update(policies)
    for name, policy in effective_policies.items():
        if policy not in POLICIES:
            raise ValueError(
                f"unknown policy {policy!r} for metric {name!r}; "
                f"expected one of {POLICIES}"
            )
    current = {_params_key(s.campaign, s.params): s for s in summaries}
    report = RegressionReport()
    seen = set()
    for group in baseline.get("groups", []):
        key = _params_key(group.get("campaign", ""), group.get("params", {}))
        seen.add(key)
        summary = current.get(key)
        if summary is None:
            report.missing.append(key)
            continue
        report.compared_groups += 1
        for name in chosen:
            frozen = group.get("metrics", {}).get(name)
            agg = summary.metrics.get(name)
            if frozen is None or agg is None:
                continue
            base = Aggregate.from_dict(frozen)
            tol = tolerances.get(name, tolerance)
            allowed = max(base.ci95, agg.ci95, tol * abs(base.mean))
            policy = effective_policies.get(name, "two-sided")
            delta = agg.mean - base.mean
            if policy == "ratchet-up":
                regressed = -delta > allowed
            elif policy == "ratchet-down":
                regressed = delta > allowed
            else:
                regressed = abs(delta) > allowed
            report.findings.append(
                Finding(
                    campaign=summary.campaign,
                    params=dict(summary.params),
                    metric=name,
                    baseline=base,
                    current=agg,
                    allowed=allowed,
                    regressed=regressed,
                    policy=policy,
                )
            )
    report.unmatched = [key for key in current if key not in seen]
    return report


def compare_records(
    baseline: Dict[str, Any],
    records: Sequence[Dict[str, Any]],
    metrics: Optional[Sequence[str]] = None,
    tolerance: float = 0.0,
    tolerances: Optional[Dict[str, float]] = None,
    policies: Optional[Dict[str, str]] = None,
) -> RegressionReport:
    """:func:`compare`, but straight from raw campaign/store records."""
    return compare(baseline, aggregate_records(records), metrics=metrics,
                   tolerance=tolerance, tolerances=tolerances,
                   policies=policies)
