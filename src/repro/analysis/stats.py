"""Repetition-aware statistics over stored campaign records.

The paper's figures are comparisons of *repeated* runs: every point carries
an error bar across seeds.  This module is the statistics layer of the
analysis subsystem: it consumes the JSONL records a
:class:`~repro.experiments.store.ResultStore` holds (or the equivalent
in-memory :class:`~repro.experiments.runner.CampaignResult` records) and
collapses repetitions into aggregates — it never executes a simulation.

Grouping
--------
Repetitions of one logical point share every parameter except the
``_repetition`` tag (the ``increment`` seed policy varies the seed *through
the config*, not through the params).  :func:`aggregate_records` therefore
groups records by ``(campaign, params - {_repetition})`` and aggregates every
numeric metric within each group, preserving first-seen (= expansion) order.

Confidence intervals
--------------------
``ci95`` is the half-width of the two-sided 95% confidence interval of the
mean under Student's t distribution: ``t(n-1) * s / sqrt(n)`` with the
critical values tabulated below (stdlib only — no scipy).  With a single
sample the interval is degenerate (``ci95 = 0``); callers that need a
tolerance for unrepeated runs supply their own (see
:mod:`repro.analysis.regress`).

Latency percentiles
-------------------
Records store per-run summaries, not raw samples, so percentiles cannot be
re-computed exactly across repetitions.  Two complementary views are given:
the per-run percentile treated as an ordinary sample (mean ± CI in
``metrics``), and a sample-count-weighted pooled estimate in ``pooled``
(runs that observed more committed replies weigh more).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

#: The params key marking a record as repetition k of its point.
REPETITION_TAG = "_repetition"

#: Latency metrics that get a sample-count-weighted pooled estimate.
POOLED_LATENCY_METRICS = ("mean_latency", "median_latency", "p99_latency")

#: Two-sided 95% critical values of Student's t, by degrees of freedom.
#: For df beyond the table the normal limit (1.96) applies.
_T95 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447, 7: 2.365,
    8: 2.306, 9: 2.262, 10: 2.228, 11: 2.201, 12: 2.179, 13: 2.160,
    14: 2.145, 15: 2.131, 16: 2.120, 17: 2.110, 18: 2.101, 19: 2.093,
    20: 2.086, 21: 2.080, 22: 2.074, 23: 2.069, 24: 2.064, 25: 2.060,
    26: 2.056, 27: 2.052, 28: 2.048, 29: 2.045, 30: 2.042,
    40: 2.021, 60: 2.000, 120: 1.980,
}


def t_critical(df: int) -> float:
    """The two-sided 95% Student-t critical value for ``df`` degrees of
    freedom (conservative between tabulated rows; 1.96 beyond df=120)."""
    if df < 1:
        raise ValueError(f"degrees of freedom must be >= 1, got {df}")
    if df in _T95:
        return _T95[df]
    below = [d for d in _T95 if d < df]
    if not below:
        return _T95[1]
    if df > 120:
        return 1.96
    # Between tabulated rows, use the next-lower df's (larger, conservative)
    # critical value.
    return _T95[max(below)]


@dataclass(frozen=True)
class Aggregate:
    """Mean / spread / 95% CI of one metric across a group's repetitions."""

    n: int
    mean: float
    stddev: float
    #: Half-width of the two-sided 95% CI of the mean (0 when n == 1).
    ci95: float
    minimum: float
    maximum: float

    @classmethod
    def from_samples(cls, values: Sequence[float]) -> "Aggregate":
        """Aggregate a non-empty list of per-repetition samples."""
        if not values:
            raise ValueError("cannot aggregate zero samples")
        n = len(values)
        mean = sum(values) / n
        if n == 1:
            return cls(n=1, mean=mean, stddev=0.0, ci95=0.0,
                       minimum=values[0], maximum=values[0])
        variance = sum((v - mean) ** 2 for v in values) / (n - 1)
        stddev = math.sqrt(variance)
        ci95 = t_critical(n - 1) * stddev / math.sqrt(n)
        return cls(n=n, mean=mean, stddev=stddev, ci95=ci95,
                   minimum=min(values), maximum=max(values))

    def scaled(self, factor: float) -> "Aggregate":
        """The same aggregate under a linear unit change (e.g. s -> ms)."""
        return Aggregate(
            n=self.n, mean=self.mean * factor, stddev=self.stddev * abs(factor),
            ci95=self.ci95 * abs(factor),
            minimum=self.minimum * factor, maximum=self.maximum * factor,
        )

    def to_dict(self) -> Dict[str, float]:
        return {"n": self.n, "mean": self.mean, "stddev": self.stddev,
                "ci95": self.ci95, "min": self.minimum, "max": self.maximum}

    @classmethod
    def from_dict(cls, data: Dict[str, float]) -> "Aggregate":
        return cls(n=int(data["n"]), mean=data["mean"], stddev=data["stddev"],
                   ci95=data["ci95"], minimum=data["min"], maximum=data["max"])


def group_params(record: Dict[str, Any]) -> Dict[str, Any]:
    """A record's params with the repetition marker stripped — the identity
    of the logical point the record is a repetition of."""
    return {k: v for k, v in record.get("params", {}).items() if k != REPETITION_TAG}


def _group_key(record: Dict[str, Any]) -> Tuple[str, str]:
    params = group_params(record)
    return (
        record.get("campaign", ""),
        json.dumps(params, sort_keys=True, separators=(",", ":"), default=str),
    )


def _is_numeric(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


@dataclass
class GroupSummary:
    """All repetitions of one logical point, collapsed into aggregates."""

    campaign: str
    params: Dict[str, Any]
    n: int
    metrics: Dict[str, Aggregate]
    #: Sample-count-weighted pooled latency estimates (see module docs).
    pooled: Dict[str, float] = field(default_factory=dict)
    #: Pointwise-aggregated throughput timeline: (t, mean_tps, ci95) per
    #: bucket, present when every record in the group carried a timeline.
    timeline: List[Tuple[float, float, float]] = field(default_factory=list)
    #: True when every repetition passed the consistency check.
    consistent: bool = True

    def metric(self, name: str) -> Aggregate:
        """The named metric's aggregate (KeyError if the metric is unknown)."""
        return self.metrics[name]

    def label(self, skip: Iterable[str] = ()) -> str:
        """A compact human label for the group (its params)."""
        hidden = set(skip) | {REPETITION_TAG}
        parts = [f"{k.lstrip('_')}={v}" for k, v in self.params.items() if k not in hidden]
        return " ".join(parts) if parts else "-"

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "campaign": self.campaign,
            "params": dict(self.params),
            "n": self.n,
            "metrics": {name: agg.to_dict() for name, agg in self.metrics.items()},
            "consistent": self.consistent,
        }
        if self.pooled:
            data["pooled"] = dict(self.pooled)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "GroupSummary":
        return cls(
            campaign=data.get("campaign", ""),
            params=dict(data.get("params", {})),
            n=int(data.get("n", 1)),
            metrics={name: Aggregate.from_dict(agg)
                     for name, agg in data.get("metrics", {}).items()},
            pooled=dict(data.get("pooled", {})),
            consistent=bool(data.get("consistent", True)),
        )


def _aggregate_timelines(timelines: List[List]) -> List[Tuple[float, float, float]]:
    """Pointwise mean ± CI across per-repetition timelines.

    Repetitions of one point share horizon and bucket width, so their
    timelines align bucket for bucket; ragged tails (a run whose last commit
    landed a bucket earlier) are cut to the shortest common length.
    """
    if not timelines or any(not t for t in timelines):
        return []
    length = min(len(t) for t in timelines)
    points = []
    for i in range(length):
        t = timelines[0][i][0]
        agg = Aggregate.from_samples([timeline[i][1] for timeline in timelines])
        points.append((t, agg.mean, agg.ci95))
    return points


def aggregate_records(
    records: Iterable[Dict[str, Any]],
    metrics: Optional[Sequence[str]] = None,
) -> List[GroupSummary]:
    """Group records by (campaign, params sans ``_repetition``) and collapse
    each group's repetitions into per-metric aggregates.

    ``metrics`` restricts which metric names are aggregated (default: every
    numeric, non-bool metric present in the group's first record).  Groups
    appear in first-seen order, which for campaign output is expansion order.
    """
    groups: Dict[Tuple[str, str], List[Dict[str, Any]]] = {}
    for record in records:
        groups.setdefault(_group_key(record), []).append(record)

    summaries: List[GroupSummary] = []
    for members in groups.values():
        first = members[0]
        names = list(metrics) if metrics is not None else [
            name for name, value in first.get("metrics", {}).items() if _is_numeric(value)
        ]
        aggregated = {
            name: Aggregate.from_samples(
                [float(m["metrics"][name]) for m in members if name in m.get("metrics", {})]
            )
            for name in names
            if any(name in m.get("metrics", {}) for m in members)
        }
        pooled: Dict[str, float] = {}
        weights = [int(m.get("metrics", {}).get("latency_samples", 0)) for m in members]
        if sum(weights) > 0:
            for name in POOLED_LATENCY_METRICS:
                if all(name in m.get("metrics", {}) for m in members):
                    pooled[name] = (
                        sum(w * float(m["metrics"][name]) for w, m in zip(weights, members))
                        / sum(weights)
                    )
        summaries.append(
            GroupSummary(
                campaign=first.get("campaign", ""),
                params=group_params(first),
                n=len(members),
                metrics=aggregated,
                pooled=pooled,
                timeline=_aggregate_timelines([m.get("timeline") or [] for m in members]),
                consistent=all(m.get("consistent", True) for m in members),
            )
        )
    return summaries


def aggregate_rows(
    rows: Sequence[Dict[str, Any]],
    keys: Sequence[str],
    metrics: Optional[Sequence[str]] = None,
) -> List[Dict[str, Any]]:
    """Collapse flat result rows (one per repetition) into one row per group.

    This is the row-level twin of :func:`aggregate_records`, used by the
    benchmark scripts whose ``run()`` functions build flat label+metric rows:
    rows sharing the values of ``keys`` are one group; every other float
    column (or the explicit ``metrics`` list) is collapsed to its mean, with
    a ``<column>_ci95`` companion column carrying the 95% CI half-width, and
    a ``reps`` column carrying the group size.  Boolean columns are ANDed
    across the group (one failing repetition must not be masked by the
    first's pass — e.g. a ``consistent`` flag); other non-float columns
    (labels) are carried through from the group's first row.
    """
    groups: Dict[Tuple, List[Dict[str, Any]]] = {}
    for row in rows:
        groups.setdefault(tuple(row.get(k) for k in keys), []).append(row)

    collapsed: List[Dict[str, Any]] = []
    for members in groups.values():
        first = members[0]
        if metrics is not None:
            names = [m for m in metrics if m in first]
        else:
            names = [c for c, v in first.items()
                     if c not in keys and isinstance(v, float) and not isinstance(v, bool)]
        out = dict(first)
        for column, value in first.items():
            if column not in keys and isinstance(value, bool):
                out[column] = all(bool(m.get(column, True)) for m in members)
        for name in names:
            samples = [float(m[name]) for m in members if name in m]
            if not samples:
                continue
            agg = Aggregate.from_samples(samples)
            out[name] = agg.mean
            out[f"{name}_ci95"] = agg.ci95
        out["reps"] = len(members)
        collapsed.append(out)
    return collapsed
