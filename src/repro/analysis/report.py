"""Comparison tables over aggregated campaign results.

This module owns *rendering*: the canonical fixed-width text table the CLI
and every benchmark script print (:func:`format_table` — previously ad-hoc
row formatting in ``benchmarks/common.py``), plus GitHub-flavoured markdown
and CSV for reports that leave the terminal, and the cross-protocol
comparison table built from :class:`~repro.analysis.stats.GroupSummary`
aggregates (mean ± 95% CI per metric).

All three formats share one row model — a list of dicts plus an ordered
column list — so a table renders identically whichever way it leaves.
"""

from __future__ import annotations

import csv
import io
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.analysis.stats import Aggregate, GroupSummary

FORMATS = ("text", "markdown", "csv")

#: The headline metrics of the paper's comparison tables, with the unit
#: scaling applied for display (latencies in milliseconds).
DEFAULT_REPORT_METRICS = (
    ("throughput_tps", "throughput_tps", 1.0),
    ("mean_latency", "mean_latency_ms", 1e3),
    ("p99_latency", "p99_latency_ms", 1e3),
    ("chain_growth_rate", "cgr", 1.0),
    ("block_interval", "block_interval", 1.0),
)


def format_cell(value: Any) -> str:
    """Render one table cell (None as '-', floats at two decimals)."""
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def format_measure(agg: Aggregate, scale: float = 1.0) -> str:
    """Render one aggregate as ``mean ±ci`` (just the mean when n == 1)."""
    shown = agg.scaled(scale)
    if shown.n == 1:
        return f"{shown.mean:.2f}"
    return f"{shown.mean:.2f} ±{shown.ci95:.2f}"


def format_table(rows: List[Dict[str, Any]], columns: Iterable[str]) -> str:
    """Render rows as a fixed-width text table (header + one line per row).

    This is the one text-table renderer: ``python -m repro`` and
    ``benchmarks/common.py`` both delegate to it.
    """
    columns = list(columns)
    widths = {
        c: max(len(c), *(len(format_cell(r.get(c))) for r in rows)) if rows else len(c)
        for c in columns
    }
    lines = ["  ".join(c.ljust(widths[c]) for c in columns)]
    for row in rows:
        lines.append("  ".join(format_cell(row.get(c)).ljust(widths[c]) for c in columns))
    return "\n".join(lines)


def markdown_table(rows: List[Dict[str, Any]], columns: Iterable[str]) -> str:
    """Render rows as a GitHub-flavoured markdown table."""
    columns = list(columns)
    lines = [
        "| " + " | ".join(columns) + " |",
        "| " + " | ".join("---" for _ in columns) + " |",
    ]
    for row in rows:
        lines.append("| " + " | ".join(format_cell(row.get(c)) for c in columns) + " |")
    return "\n".join(lines)


def csv_table(rows: List[Dict[str, Any]], columns: Iterable[str]) -> str:
    """Render rows as CSV (raw values, not display-formatted)."""
    columns = list(columns)
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(columns)
    for row in rows:
        writer.writerow(["" if row.get(c) is None else row.get(c) for c in columns])
    return buffer.getvalue().rstrip("\n")


def render(rows: List[Dict[str, Any]], columns: Iterable[str], fmt: str = "text") -> str:
    """Render rows in the named format ("text", "markdown", or "csv")."""
    if fmt == "text":
        return format_table(rows, columns)
    if fmt == "markdown":
        return markdown_table(rows, columns)
    if fmt == "csv":
        return csv_table(rows, columns)
    raise ValueError(f"unknown table format {fmt!r}; expected one of {', '.join(FORMATS)}")


def summary_rows(
    summaries: Sequence[GroupSummary],
    metrics: Optional[Sequence] = None,
    raw: bool = False,
) -> List[Dict[str, Any]]:
    """One comparison row per group: params label + per-metric measures.

    ``metrics`` entries are either plain metric names or ``(metric, column,
    scale)`` triples; the default is the paper's headline set with latencies
    in milliseconds.  With ``raw=True`` the cells are plain mean values (for
    CSV post-processing) instead of formatted ``mean ±ci`` strings.
    """
    chosen = _normalize_metrics(metrics)
    rows = []
    for summary in summaries:
        row: Dict[str, Any] = {
            "campaign": summary.campaign or "-",
            "params": summary.label(),
            "reps": summary.n,
        }
        for metric, column, scale in chosen:
            agg = summary.metrics.get(metric)
            if agg is None:
                row[column] = None
            elif raw:
                row[column] = agg.mean * scale
                row[f"{column}_ci95"] = agg.ci95 * scale
            else:
                row[column] = format_measure(agg, scale)
        if not summary.consistent:
            row["consistent"] = False
        rows.append(row)
    return rows


def comparison_table(
    summaries: Sequence[GroupSummary],
    metrics: Optional[Sequence] = None,
    fmt: str = "text",
) -> str:
    """The cross-protocol comparison table (one row per aggregated group)."""
    raw = fmt == "csv"
    rows = summary_rows(summaries, metrics=metrics, raw=raw)
    columns = ["campaign", "params", "reps"]
    for _metric, column, _scale in _normalize_metrics(metrics):
        columns.append(column)
        if raw:
            columns.append(f"{column}_ci95")
    if any("consistent" in row for row in rows):
        columns.append("consistent")
    return render(rows, columns, fmt=fmt)


def _normalize_metrics(metrics: Optional[Sequence]) -> List:
    if metrics is None:
        return [list(triple) for triple in DEFAULT_REPORT_METRICS]
    chosen = []
    for entry in metrics:
        if isinstance(entry, str):
            chosen.append((entry, entry, 1.0))
        else:
            metric, column, scale = entry
            chosen.append((metric, column, scale))
    return chosen
