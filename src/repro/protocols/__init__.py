"""Chained-BFT protocol implementations.

A protocol is expressed as a :class:`~repro.protocols.safety.Safety` subclass
that fills in the four rules of the paper (§II-A): Proposing, Voting, State
Updating, and Commit.  Everything else (block forest, pacemaker, quorum,
network, mempool, execution) is shared, which is what makes the comparison
between protocols apples-to-apples.
"""

from repro.protocols.fasthotstuff import FastHotStuffSafety
from repro.protocols.hotstuff import HotStuffSafety
from repro.protocols.lbft import LeaderBroadcastSafety
from repro.protocols.registry import available_protocols, make_safety
from repro.protocols.safety import ProposalPlan, Safety
from repro.protocols.streamlet import StreamletSafety
from repro.protocols.twochain import TwoChainHotStuffSafety

__all__ = [
    "FastHotStuffSafety",
    "HotStuffSafety",
    "LeaderBroadcastSafety",
    "ProposalPlan",
    "Safety",
    "StreamletSafety",
    "TwoChainHotStuffSafety",
    "available_protocols",
    "make_safety",
]
