"""Chained-BFT protocol implementations.

A protocol is expressed as a :class:`~repro.protocols.safety.Safety` subclass
that fills in the four rules of the paper (§II-A): Proposing, Voting, State
Updating, and Commit.  Everything else (block forest, pacemaker, quorum,
network, mempool, execution) is shared, which is what makes the comparison
between protocols apples-to-apples.

Protocols are an extension point: each built-in module registers its class
with :func:`~repro.protocols.registry.register_protocol`, and third-party
protocols do the same (see ``README.md`` for a worked example).  The import
order below fixes the canonical listing order of ``available_protocols()``.
"""

# Imported in the paper's presentation order so that the registry lists
# hotstuff, 2chainhs, streamlet, fasthotstuff, lbft.
from repro.protocols.hotstuff import HotStuffSafety
from repro.protocols.twochain import TwoChainHotStuffSafety
from repro.protocols.streamlet import StreamletSafety
from repro.protocols.fasthotstuff import FastHotStuffSafety
from repro.protocols.lbft import LeaderBroadcastSafety
from repro.protocols.registry import (
    PROTOCOLS,
    available_protocols,
    make_safety,
    register_protocol,
)
from repro.protocols.safety import ProposalPlan, Safety

__all__ = [
    "FastHotStuffSafety",
    "HotStuffSafety",
    "LeaderBroadcastSafety",
    "PROTOCOLS",
    "ProposalPlan",
    "Safety",
    "StreamletSafety",
    "TwoChainHotStuffSafety",
    "available_protocols",
    "make_safety",
    "register_protocol",
]
