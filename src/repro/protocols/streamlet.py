"""Streamlet (paper §II-D), adapted to the shared pacemaker.

Streamlet's rules follow the longest-chain principle:

* Proposing: extend the tip of the longest *notarized* (certified) chain.
* Voting: vote for the first proposal of a view only if it extends the
  longest notarized chain seen so far.  Votes are **broadcast** to every
  replica rather than sent to the next leader.
* Commit: whenever three blocks proposed in three consecutive views are all
  certified, the first two of them (and all their ancestors) are committed.

Every message is echoed once by every replica, which is what gives Streamlet
its O(n^3) communication complexity and its poor scalability in the paper's
evaluation — but also its immunity to the forking attack, because honest
replicas never vote for a proposal that abandons the longest notarized chain.

The original protocol advances views with a synchronized 2Δ clock; as in the
paper, the shared pacemaker replaces that clock so the comparison with the
HotStuff variants is fair.

Streamlet is the protocol most sensitive to gaps: its voting rule compares
the proposal's parent against the longest *notarized* chain, so a replica
missing a chain segment votes for nothing at all.  Catch-up
(:mod:`repro.sync`) re-notarizes the fetched segment via the recorded
certificates, restoring the longest-chain computation — no Streamlet-specific
sync code is needed.
"""

from __future__ import annotations

from typing import Optional

from repro.protocols.registry import register_protocol
from repro.protocols.safety import ProposalPlan, Safety
from repro.types.block import Block


@register_protocol("streamlet", "sl")
class StreamletSafety(Safety):
    """Pacemaker-driven Streamlet."""

    protocol_name = "streamlet"
    votes_broadcast = True
    echo_messages = True
    responsive = False
    commit_rule_depth = 3

    # ------------------------------------------------------------------
    # Proposing rule
    # ------------------------------------------------------------------
    def choose_extension(self) -> ProposalPlan:
        tip = self.forest.longest_certified_tip()
        qc = tip.qc
        assert qc is not None, "a certified tip always carries its certificate"
        return ProposalPlan(parent_id=tip.block_id, qc=qc)

    # ------------------------------------------------------------------
    # Voting rule
    # ------------------------------------------------------------------
    def should_vote(self, block: Block) -> bool:
        if block.view <= self.last_voted_view:
            return False
        if not self.embedded_qc_matches_parent(block):
            return False
        parent = self.forest.maybe_get(block.parent_id)
        if parent is None or not parent.certified:
            return False
        longest = self.forest.longest_certified_tip()
        longest_length = self.forest.certified_chain_length(longest.block_id)
        parent_length = self.forest.certified_chain_length(parent.block_id)
        return parent_length >= longest_length

    # ------------------------------------------------------------------
    # State-updating rule: maintain the notarized chain (no lock variable).
    # ------------------------------------------------------------------

    # ------------------------------------------------------------------
    # Commit rule
    # ------------------------------------------------------------------
    def commit_candidate(self, block_id: str) -> Optional[str]:
        tail = self.forest.maybe_get(block_id)
        if tail is None or not tail.certified:
            return None
        middle = self.forest.maybe_get(tail.block.parent_id)
        if middle is None or not middle.certified:
            return None
        head = self.forest.maybe_get(middle.block.parent_id)
        if head is None or not head.certified:
            return None
        if middle.view != tail.view - 1 or head.view != middle.view - 1:
            return None
        if middle.committed:
            return None
        # The first two of the three consecutive certified blocks commit; the
        # middle block is the highest of those two.
        return middle.block_id
