"""A vote-broadcast two-chain protocol in the spirit of LBFT (paper §I, [12]).

The paper lists LBFT (leaderless BFT) among the protocols prototyped with
Bamboo but does not evaluate or specify it.  Reference [12] removes the
reliance on a single leader by letting every replica learn certificates
directly.  This module implements the closest protocol expressible within
the shared propose-vote machinery: a two-chain commit rule with **broadcast
votes**, so that every replica (not just the next leader) assembles QCs and
no single silent leader can suppress a certificate.  It is exercised by the
extension tests and the design-choice ablation bench (vote destination), not
by the headline figures.

The class name reflects what the protocol actually is — leader proposals
with broadcast votes — to avoid overstating fidelity to [12].

Broadcast votes give this protocol a second sync trigger: every replica
aggregates QCs itself, so a QC can form locally for a block that never
arrived.  The replica routes that case to the sync manager
(:mod:`repro.sync`) too (``note_missing_certified``), which fetches the
certified block and its ancestry.
"""

from __future__ import annotations

from typing import Optional

from repro.protocols.registry import register_protocol
from repro.protocols.safety import ProposalPlan, Safety
from repro.types.block import Block
from repro.types.certificates import QuorumCertificate


@register_protocol("lbft")
class LeaderBroadcastSafety(Safety):
    """Two-chain commit with broadcast votes (LBFT-inspired)."""

    protocol_name = "lbft"
    votes_broadcast = True
    echo_messages = False
    responsive = False
    commit_rule_depth = 2

    def choose_extension(self) -> ProposalPlan:
        return ProposalPlan(parent_id=self.high_qc.block_id, qc=self.high_qc)

    def should_vote(self, block: Block) -> bool:
        if block.view <= self.last_voted_view:
            return False
        if not self.embedded_qc_matches_parent(block):
            return False
        if self.forest.extends(block, self.locked_block_id):
            return True
        justify_view = block.qc.view if block.qc is not None else 0
        return justify_view > self.locked_view()

    def _update_lock(self, qc: QuorumCertificate) -> None:
        vertex = self.forest.maybe_get(qc.block_id)
        if vertex is None:
            return
        if vertex.view > self.locked_view():
            self.locked_block_id = vertex.block_id

    def commit_candidate(self, block_id: str) -> Optional[str]:
        tail = self.forest.maybe_get(block_id)
        if tail is None or not tail.certified:
            return None
        head = self.forest.maybe_get(tail.block.parent_id)
        if head is None or not head.certified:
            return None
        if head.view != tail.view - 1:
            return None
        if head.committed:
            return None
        return head.block_id
