"""Fast-HotStuff: a responsive two-chain variant (paper §I, reference [7]).

Fast-HotStuff commits with a two-chain like 2CHS but stays optimistically
responsive after a view change by having the new leader justify its proposal
with an aggregated view of the highest QCs reported in the timeout
certificate.  In this framework the aggregation is modelled by the
``high_qc_view`` carried in the TC: a proposal made right after a view change
is considered justified as long as it extends the highest certificate the
leader knows, and replicas accept it when the justification is at least as
high as their lock *or* the proposal extends their lock.

The protocol is included because the paper lists it among the protocols
built with Bamboo; it is exercised by the extension tests and the ablation
benchmarks rather than by the headline figures.  Like its siblings it relies
on the shared missing-parent path: gaps are routed to the sync manager
(:mod:`repro.sync`) and the lock is re-derived from fetched certificates.
"""

from __future__ import annotations

from typing import Optional

from repro.protocols.registry import register_protocol
from repro.protocols.safety import ProposalPlan, Safety
from repro.types.block import Block
from repro.types.certificates import QuorumCertificate


@register_protocol("fasthotstuff", "fhs")
class FastHotStuffSafety(Safety):
    """Two-chain commit with responsiveness-oriented voting."""

    protocol_name = "fasthotstuff"
    votes_broadcast = False
    echo_messages = False
    responsive = True
    commit_rule_depth = 2

    def choose_extension(self) -> ProposalPlan:
        return ProposalPlan(parent_id=self.high_qc.block_id, qc=self.high_qc)

    def should_vote(self, block: Block) -> bool:
        if block.view <= self.last_voted_view:
            return False
        if not self.embedded_qc_matches_parent(block):
            return False
        if self.forest.extends(block, self.locked_block_id):
            return True
        justify_view = block.qc.view if block.qc is not None else 0
        # ">=" rather than ">" is the aggregated-justification relaxation:
        # after a view change the new leader may only know a QC as high as
        # (not higher than) the lock, and its proposal is still accepted.
        return justify_view >= self.locked_view()

    def _update_lock(self, qc: QuorumCertificate) -> None:
        vertex = self.forest.maybe_get(qc.block_id)
        if vertex is None:
            return
        if vertex.view > self.locked_view():
            self.locked_block_id = vertex.block_id

    def commit_candidate(self, block_id: str) -> Optional[str]:
        tail = self.forest.maybe_get(block_id)
        if tail is None or not tail.certified:
            return None
        head = self.forest.maybe_get(tail.block.parent_id)
        if head is None or not head.certified:
            return None
        if head.view != tail.view - 1:
            return None
        if head.committed:
            return None
        return head.block_id
