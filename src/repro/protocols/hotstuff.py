"""Chained HotStuff (paper §II-B).

State variables:

* ``hQC`` — the highest quorum certificate seen.
* ``lBlock`` — the head of the highest two-chain (a certified block with a
  certified direct child).
* ``lvView`` — the last view voted in.

Rules:

* Proposing: extend the block certified by ``hQC`` and embed ``hQC``.
* Voting: vote for a block ``b*`` iff ``b*.view > lvView`` and (``b*`` extends
  ``lBlock`` or the view of ``b*``'s justification is higher than ``lBlock``'s
  view).
* Commit: a block is committed once it heads a three-chain of certified
  blocks with direct parent links and **consecutive views** — the classic
  chained-HotStuff decide rule, which is what makes B1 in the paper's Fig. 6
  wait until view 8 after a silence attack.

Catch-up (:mod:`repro.sync`) needs no HotStuff-specific handling: fetched
blocks are inserted oldest-first, each embedded QC re-runs the state-updating
rule, and the two-chain lock is re-derived as the recovered history replays —
after which the voting rule accepts live proposals again.
"""

from __future__ import annotations

from typing import Optional

from repro.protocols.registry import register_protocol
from repro.protocols.safety import ProposalPlan, Safety
from repro.types.block import Block
from repro.types.certificates import QuorumCertificate


@register_protocol("hotstuff", "hs")
class HotStuffSafety(Safety):
    """Three-chain chained HotStuff."""

    protocol_name = "hotstuff"
    votes_broadcast = False
    echo_messages = False
    responsive = True
    commit_rule_depth = 3

    # ------------------------------------------------------------------
    # Proposing rule
    # ------------------------------------------------------------------
    def choose_extension(self) -> ProposalPlan:
        return ProposalPlan(parent_id=self.high_qc.block_id, qc=self.high_qc)

    # ------------------------------------------------------------------
    # Voting rule
    # ------------------------------------------------------------------
    def should_vote(self, block: Block) -> bool:
        if block.view <= self.last_voted_view:
            return False
        if not self.embedded_qc_matches_parent(block):
            return False
        if self.forest.extends(block, self.locked_block_id):
            return True
        justify_view = block.qc.view if block.qc is not None else 0
        return justify_view > self.locked_view()

    # ------------------------------------------------------------------
    # State-updating rule
    # ------------------------------------------------------------------
    def _update_lock(self, qc: QuorumCertificate) -> None:
        # A new QC certifies block b; if b's direct parent is also certified,
        # (parent, b) is a two-chain whose head is the parent — lock on it if
        # it is newer than the current lock.
        vertex = self.forest.maybe_get(qc.block_id)
        if vertex is None:
            return
        parent = self.forest.maybe_get(vertex.block.parent_id)
        if parent is None or not parent.certified:
            return
        if parent.view > self.locked_view():
            self.locked_block_id = parent.block_id

    # ------------------------------------------------------------------
    # Commit rule
    # ------------------------------------------------------------------
    def commit_candidate(self, block_id: str) -> Optional[str]:
        tail = self.forest.maybe_get(block_id)
        if tail is None or not tail.certified:
            return None
        middle = self.forest.maybe_get(tail.block.parent_id)
        if middle is None or not middle.certified:
            return None
        head = self.forest.maybe_get(middle.block.parent_id)
        if head is None or not head.certified:
            return None
        if middle.view != tail.view - 1 or head.view != middle.view - 1:
            return None
        if head.committed:
            return None
        return head.block_id
