"""Protocol registry: map configuration names to Safety implementations."""

from __future__ import annotations

from typing import Dict, List, Type

from repro.forest.forest import BlockForest
from repro.protocols.fasthotstuff import FastHotStuffSafety
from repro.protocols.hotstuff import HotStuffSafety
from repro.protocols.lbft import LeaderBroadcastSafety
from repro.protocols.safety import Safety
from repro.protocols.streamlet import StreamletSafety
from repro.protocols.twochain import TwoChainHotStuffSafety

_REGISTRY: Dict[str, Type[Safety]] = {
    "hotstuff": HotStuffSafety,
    "hs": HotStuffSafety,
    "2chainhs": TwoChainHotStuffSafety,
    "2chs": TwoChainHotStuffSafety,
    "twochain": TwoChainHotStuffSafety,
    "streamlet": StreamletSafety,
    "sl": StreamletSafety,
    "fasthotstuff": FastHotStuffSafety,
    "fhs": FastHotStuffSafety,
    "lbft": LeaderBroadcastSafety,
}


def available_protocols() -> List[str]:
    """Canonical names of the protocols that can be instantiated."""
    return ["hotstuff", "2chainhs", "streamlet", "fasthotstuff", "lbft"]


def make_safety(name: str, forest: BlockForest) -> Safety:
    """Instantiate the Safety module for protocol ``name``."""
    key = name.lower().replace("-", "").replace("_", "")
    if key not in _REGISTRY:
        raise ValueError(
            f"unknown protocol {name!r}; available: {', '.join(available_protocols())}"
        )
    return _REGISTRY[key](forest)
