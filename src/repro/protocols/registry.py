"""Protocol registry: the extension point for chained-BFT protocols.

Protocols register themselves with the :func:`register_protocol` decorator::

    from repro.protocols.registry import register_protocol
    from repro.protocols.safety import Safety

    @register_protocol("myproto", "mp")
    class MyProtocolSafety(Safety):
        ...

After that, ``Configuration(protocol="myproto")`` works everywhere — the
runner, the facade, the benchmarks — with no other wiring.  The five
built-in protocols are registered in their own modules and loaded lazily on
first lookup; :func:`available_protocols` is derived from the registry
contents rather than a hand-maintained list.
"""

from __future__ import annotations

from typing import Callable, List, Type

from repro.forest.forest import BlockForest
from repro.plugins import Registry, lazy_import
from repro.protocols.safety import Safety

#: The protocol extension point.  Values are ``Safety`` subclasses
#: instantiated with the replica's :class:`BlockForest`.
PROTOCOLS: Registry[Type[Safety]] = Registry("protocol")

_ensure_builtin = lazy_import(
    [
        "repro.protocols.hotstuff",
        "repro.protocols.twochain",
        "repro.protocols.streamlet",
        "repro.protocols.fasthotstuff",
        "repro.protocols.lbft",
    ]
)


def register_protocol(name: str, *aliases: str, override: bool = False) -> Callable:
    """Class decorator registering a :class:`Safety` subclass as a protocol."""
    return PROTOCOLS.register(name, *aliases, override=override)


def available_protocols() -> List[str]:
    """Canonical names of the protocols that can be instantiated."""
    _ensure_builtin()
    return PROTOCOLS.available()


def make_safety(name: str, forest: BlockForest) -> Safety:
    """Instantiate the Safety module for protocol ``name``."""
    _ensure_builtin()
    return PROTOCOLS.get(name)(forest)
