"""Two-chain HotStuff (2CHS, paper §II-C).

Identical to HotStuff except that the lock is placed on the head of the
highest *one-chain* (the block certified by ``hQC``) and the commit rule
requires only a two-chain.  Saving one round of voting lowers latency but
costs optimistic responsiveness: after a view change a correct leader must
wait for the maximal network delay to be sure it has heard of the highest
lock, otherwise honest replicas may refuse to vote (this is exactly the
behaviour the responsiveness experiment of §VI-D exposes).

Catch-up (:mod:`repro.sync`) replays fetched certificates through
``update_qc``, so the one-chain lock lands on the recovered chain's tip and
a recovered replica's voting rule immediately accepts live proposals.
"""

from __future__ import annotations

from typing import Optional

from repro.protocols.registry import register_protocol
from repro.protocols.safety import ProposalPlan, Safety
from repro.types.block import Block
from repro.types.certificates import QuorumCertificate


@register_protocol("2chainhs", "2chs", "twochain")
class TwoChainHotStuffSafety(Safety):
    """Two-phase (two-chain) variant of HotStuff."""

    protocol_name = "2chainhs"
    votes_broadcast = False
    echo_messages = False
    responsive = False
    commit_rule_depth = 2

    # ------------------------------------------------------------------
    # Proposing rule (same as HotStuff)
    # ------------------------------------------------------------------
    def choose_extension(self) -> ProposalPlan:
        return ProposalPlan(parent_id=self.high_qc.block_id, qc=self.high_qc)

    # ------------------------------------------------------------------
    # Voting rule (same predicate as HotStuff, but against a tighter lock)
    # ------------------------------------------------------------------
    def should_vote(self, block: Block) -> bool:
        if block.view <= self.last_voted_view:
            return False
        if not self.embedded_qc_matches_parent(block):
            return False
        if self.forest.extends(block, self.locked_block_id):
            return True
        justify_view = block.qc.view if block.qc is not None else 0
        return justify_view > self.locked_view()

    # ------------------------------------------------------------------
    # State-updating rule
    # ------------------------------------------------------------------
    def _update_lock(self, qc: QuorumCertificate) -> None:
        # The lock is the head of the highest one-chain: the block certified
        # by the highest QC known.
        vertex = self.forest.maybe_get(qc.block_id)
        if vertex is None:
            return
        if vertex.view > self.locked_view():
            self.locked_block_id = vertex.block_id

    # ------------------------------------------------------------------
    # Commit rule
    # ------------------------------------------------------------------
    def commit_candidate(self, block_id: str) -> Optional[str]:
        tail = self.forest.maybe_get(block_id)
        if tail is None or not tail.certified:
            return None
        head = self.forest.maybe_get(tail.block.parent_id)
        if head is None or not head.certified:
            return None
        if head.view != tail.view - 1:
            return None
        if head.committed:
            return None
        return head.block_id
