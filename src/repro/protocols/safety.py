"""The Safety module interface (paper §III-C).

A concrete protocol provides the four rules:

* **Proposing rule** — :meth:`Safety.choose_extension` decides which block a
  new proposal extends and which quorum certificate it embeds.
* **Voting rule** — :meth:`Safety.should_vote` decides whether to vote for an
  incoming block.
* **State-updating rule** — :meth:`Safety.update_qc` (and
  :meth:`Safety.record_vote_sent`) maintain the protocol's state variables
  (highest QC, locked block, last voted view, ...).
* **Commit rule** — :meth:`Safety.commit_candidate` decides, whenever a block
  becomes certified, whether some ancestor can now be committed.

The class also exposes protocol metadata (whether votes are broadcast,
whether messages are echoed, whether the protocol is optimistically
responsive, the depth of its commit rule) that the replica and the analytical
model consume.

None of the four rules assume gap-free delivery: a proposal whose parent is
missing never reaches the Safety module (the replica parks it and routes the
gap to the sync manager, :mod:`repro.sync`).  When fetched blocks are
inserted oldest-first, their certificates flow through the ordinary
state-updating rule — ``update_qc`` re-derives ``hQC`` and each protocol's
lock from the recovered history — so a protocol implementation needs no
sync-specific code to survive a crash/recover or partition-heal scenario.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional

from repro.forest.forest import BlockForest
from repro.types.block import Block, GENESIS_ID
from repro.types.certificates import QuorumCertificate


@dataclass
class ProposalPlan:
    """Outcome of the proposing rule: which block to extend and the QC to embed."""

    parent_id: str
    qc: QuorumCertificate


class Safety(ABC):
    """Base class holding the state variables shared by cBFT protocols."""

    #: Human-readable protocol name ("hotstuff", "2chainhs", "streamlet", ...).
    protocol_name: str = "abstract"
    #: True if votes are broadcast to every replica instead of sent to the
    #: next leader (Streamlet).
    votes_broadcast: bool = False
    #: True if replicas re-broadcast (echo) every proposal and vote they
    #: receive for the first time (Streamlet).
    echo_messages: bool = False
    #: True if the protocol is optimistically responsive (HotStuff).
    responsive: bool = True
    #: Number of chained certified blocks required by the commit rule.
    commit_rule_depth: int = 3

    def __init__(self, forest: BlockForest) -> None:
        self.forest = forest
        genesis_vertex = forest.get(GENESIS_ID)
        assert genesis_vertex.qc is not None
        #: Highest QC known from any source (votes collected or proposals seen).
        self.high_qc: QuorumCertificate = genesis_vertex.qc
        #: Highest QC learned from a *received proposal* — i.e. a certificate
        #: that has been publicly disseminated.  Byzantine forking strategies
        #: use this to compute how far back they can fork while still
        #: satisfying honest replicas' voting rules.
        self.public_high_qc: QuorumCertificate = genesis_vertex.qc
        #: The locked block (lBlock).  Protocols that do not lock leave it at
        #: genesis.
        self.locked_block_id: str = GENESIS_ID
        #: The highest view this replica voted in (lvView).
        self.last_voted_view: int = 0

    # ------------------------------------------------------------------
    # Proposing rule
    # ------------------------------------------------------------------
    @abstractmethod
    def choose_extension(self) -> ProposalPlan:
        """Pick the parent block and the certificate for a new proposal."""

    # ------------------------------------------------------------------
    # Voting rule
    # ------------------------------------------------------------------
    @abstractmethod
    def should_vote(self, block: Block) -> bool:
        """Decide whether to vote for an incoming block."""

    def record_vote_sent(self, block: Block) -> None:
        """Update ``lvView`` right after a vote is sent (paper §II-B)."""
        if block.view > self.last_voted_view:
            self.last_voted_view = block.view

    # ------------------------------------------------------------------
    # State-updating rule
    # ------------------------------------------------------------------
    def update_qc(self, qc: QuorumCertificate) -> None:
        """Incorporate a newly learned certificate into the protocol state."""
        self.forest.record_qc(qc)
        if qc.view > self.high_qc.view:
            self.high_qc = qc
        self._update_lock(qc)

    def note_embedded_qc(self, qc: QuorumCertificate) -> None:
        """Incorporate a certificate carried inside a received proposal."""
        if qc.view > self.public_high_qc.view:
            self.public_high_qc = qc
        self.update_qc(qc)

    def _update_lock(self, qc: QuorumCertificate) -> None:
        """Protocol-specific lock maintenance (no lock by default)."""

    # ------------------------------------------------------------------
    # Commit rule
    # ------------------------------------------------------------------
    @abstractmethod
    def commit_candidate(self, block_id: str) -> Optional[str]:
        """Given a block that just became certified, return a block to commit.

        Returns the id of the highest block that the commit rule now allows
        committing (the replica commits it together with all its uncommitted
        ancestors), or ``None`` if the rule is not met.
        """

    # ------------------------------------------------------------------
    # shared semantic checks
    # ------------------------------------------------------------------
    def embedded_qc_matches_parent(self, block: Block) -> bool:
        """True if the proposal's embedded QC certifies the block's parent.

        All protocols in this family require the justification carried by a
        proposal to certify the block it extends; anything else is malformed
        and is not voted for.
        """
        if block.qc is None or block.parent_id is None:
            return False
        return block.qc.block_id == block.parent_id

    def locked_view(self) -> int:
        """View of the currently locked block (0 when unlocked/genesis)."""
        if self.locked_block_id not in self.forest:
            return 0
        return self.forest.get(self.locked_block_id).view
