"""Pacemaker: view synchronization ensuring liveness (paper §III-B)."""

from repro.pacemaker.pacemaker import Pacemaker, PacemakerStats, ViewChangeReason

__all__ = ["Pacemaker", "PacemakerStats", "ViewChangeReason"]
