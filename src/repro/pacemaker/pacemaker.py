"""The pacemaker module: local timers, TIMEOUT aggregation, view advancement.

The design follows the LibraBFT-style view synchronization the paper adopts
(§III-B): whenever a replica's view timer expires it broadcasts a
``TIMEOUT`` message for its current view; receiving a quorum (2f+1) of
timeouts for a view forms a TimeoutCertificate (TC) and lets the replica
advance to the next view.  Views also advance on the happy path whenever a
QC for the current view is observed.  The pacemaker itself does no
networking — it exposes callbacks and lets the replica put messages on the
wire — which keeps it reusable by every protocol.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.quorum.quorum import TimeoutTracker
from repro.sim.events import Event, EventScheduler
from repro.types.certificates import Timeout, TimeoutCertificate


class ViewChangeReason(enum.Enum):
    """Why a replica entered a new view."""

    START = "start"
    QC = "qc"
    TC = "tc"


@dataclass
class PacemakerStats:
    """Counters describing pacemaker activity in one run."""

    local_timeouts: int = 0
    view_changes_on_qc: int = 0
    view_changes_on_tc: int = 0
    highest_view: int = 0
    views_entered_at: Dict[int, float] = field(default_factory=dict)


class Pacemaker:
    """Per-replica view synchronization logic."""

    def __init__(
        self,
        scheduler: EventScheduler,
        node_id: str,
        timeout_tracker: TimeoutTracker,
        view_timeout: float,
        on_view_start: Callable[[int, ViewChangeReason], None],
        on_local_timeout: Callable[[int], None],
        timeout_provider: Optional[Callable[[int], float]] = None,
    ) -> None:
        """Create a pacemaker.

        Parameters
        ----------
        view_timeout:
            Base waiting time before a view is declared stuck (Table I's
            ``timeout``, default 100 ms).
        on_view_start:
            Called whenever a new view begins, with the view number and the
            reason (start / QC / TC).  The replica proposes here if it leads.
        on_local_timeout:
            Called when the local timer for the current view expires; the
            replica broadcasts its TIMEOUT message from this callback.
        timeout_provider:
            Optional function ``consecutive_timeouts -> seconds`` used to
            grow the timeout under repeated failures (exponential backoff
            ablation); defaults to the constant ``view_timeout``.
        """
        if view_timeout <= 0:
            raise ValueError(f"view timeout must be positive, got {view_timeout}")
        self.scheduler = scheduler
        self.node_id = node_id
        self.timeout_tracker = timeout_tracker
        self.view_timeout = view_timeout
        self.on_view_start = on_view_start
        self.on_local_timeout = on_local_timeout
        self.timeout_provider = timeout_provider
        self.stats = PacemakerStats()

        self.current_view = 0
        self._timer: Optional[Event] = None
        self._consecutive_timeouts = 0
        self._started = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self, initial_view: int = 1) -> None:
        """Enter the first view and arm the timer."""
        if self._started:
            raise RuntimeError("pacemaker already started")
        self._started = True
        self._enter_view(initial_view, ViewChangeReason.START)

    def stop(self) -> None:
        """Cancel the running timer (end of simulation or crash)."""
        if self._timer is not None and self._timer.pending:
            self._timer.cancel()
        self._timer = None

    def resume(self) -> None:
        """Re-arm after a crash recovery, re-entering the current view."""
        self._started = True
        self._enter_view(max(1, self.current_view), ViewChangeReason.START)

    # ------------------------------------------------------------------
    # view advancement
    # ------------------------------------------------------------------
    def advance_on_qc(self, qc_view: int) -> bool:
        """Advance to ``qc_view + 1`` if that is ahead of the current view."""
        target = qc_view + 1
        if target <= self.current_view:
            return False
        self._consecutive_timeouts = 0
        self.stats.view_changes_on_qc += 1
        self._enter_view(target, ViewChangeReason.QC)
        return True

    def advance_on_tc(self, tc: TimeoutCertificate) -> bool:
        """Advance to ``tc.view + 1`` if that is ahead of the current view."""
        target = tc.view + 1
        if target <= self.current_view:
            return False
        self.stats.view_changes_on_tc += 1
        self._enter_view(target, ViewChangeReason.TC)
        return True

    def process_remote_timeout(self, timeout: Timeout) -> Optional[TimeoutCertificate]:
        """Record a peer's TIMEOUT message; return a TC when one forms."""
        return self.timeout_tracker.add_and_certify(timeout)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def current_timeout(self) -> float:
        """The timer duration for the current view."""
        if self.timeout_provider is not None:
            return self.timeout_provider(self._consecutive_timeouts)
        return self.view_timeout

    def _enter_view(self, view: int, reason: ViewChangeReason) -> None:
        if self._timer is not None and self._timer.pending:
            self._timer.cancel()
        self.current_view = view
        self.stats.highest_view = max(self.stats.highest_view, view)
        self.stats.views_entered_at[view] = self.scheduler.now
        self._timer = self.scheduler.call_after(self.current_timeout(), self._on_timer, view)
        self.on_view_start(view, reason)

    def _on_timer(self, view: int) -> None:
        if view != self.current_view:
            return
        self.stats.local_timeouts += 1
        self._consecutive_timeouts += 1
        # Re-arm so a stuck replica keeps signalling its timeout (the quorum
        # may have missed the earlier broadcast).
        self._timer = self.scheduler.call_after(self.current_timeout(), self._on_timer, view)
        self.on_local_timeout(view)
