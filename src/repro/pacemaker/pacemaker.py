"""The pacemaker module: local timers, TIMEOUT aggregation, view advancement.

The design follows the LibraBFT-style view synchronization the paper adopts
(§III-B): whenever a replica's view timer expires it broadcasts a
``TIMEOUT`` message for its current view; receiving a quorum (2f+1) of
timeouts for a view forms a TimeoutCertificate (TC) and lets the replica
advance to the next view.  Views also advance on the happy path whenever a
QC for the current view is observed.  The pacemaker itself does no
networking — it exposes callbacks and lets the replica put messages on the
wire — which keeps it reusable by every protocol.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.obs import trace as obs_trace
from repro.quorum.quorum import TimeoutTracker
from repro.sim.events import Event, EventScheduler
from repro.types.certificates import Timeout, TimeoutCertificate

#: Most recent view-entry timestamps kept in :attr:`PacemakerStats.views_entered_at`.
#: A long run enters one view every few milliseconds; keeping every entry made
#: the dict grow with run length, so only a bounded recent window is retained.
VIEW_HISTORY_BOUND = 1024


class ViewChangeReason(enum.Enum):
    """Why a replica entered a new view."""

    START = "start"
    QC = "qc"
    TC = "tc"


@dataclass
class PacemakerStats:
    """Counters describing pacemaker activity in one run."""

    local_timeouts: int = 0
    view_changes_on_qc: int = 0
    view_changes_on_tc: int = 0
    highest_view: int = 0
    #: Entry times of the most recent :data:`VIEW_HISTORY_BOUND` views
    #: (oldest evicted first; insertion order is view-entry order).
    views_entered_at: Dict[int, float] = field(default_factory=dict)

    def record_view_entered(self, view: int, now: float) -> None:
        """Record a view entry, evicting the oldest past the history bound."""
        self.views_entered_at[view] = now
        while len(self.views_entered_at) > VIEW_HISTORY_BOUND:
            self.views_entered_at.pop(next(iter(self.views_entered_at)))


class Pacemaker:
    """Per-replica view synchronization logic."""

    def __init__(
        self,
        scheduler: EventScheduler,
        node_id: str,
        timeout_tracker: TimeoutTracker,
        view_timeout: float,
        on_view_start: Callable[[int, ViewChangeReason], None],
        on_local_timeout: Callable[[int], None],
        timeout_provider: Optional[Callable[[int], float]] = None,
    ) -> None:
        """Create a pacemaker.

        Parameters
        ----------
        view_timeout:
            Base waiting time before a view is declared stuck (Table I's
            ``timeout``, default 100 ms).
        on_view_start:
            Called whenever a new view begins, with the view number and the
            reason (start / QC / TC).  The replica proposes here if it leads.
        on_local_timeout:
            Called when the local timer for the current view expires; the
            replica broadcasts its TIMEOUT message from this callback.
        timeout_provider:
            Optional function ``consecutive_timeouts -> seconds`` used to
            grow the timeout under repeated failures (exponential backoff
            ablation); defaults to the constant ``view_timeout``.
        """
        if view_timeout <= 0:
            raise ValueError(f"view timeout must be positive, got {view_timeout}")
        self.scheduler = scheduler
        self.node_id = node_id
        self.timeout_tracker = timeout_tracker
        self.view_timeout = view_timeout
        self.on_view_start = on_view_start
        self.on_local_timeout = on_local_timeout
        self.timeout_provider = timeout_provider
        self.stats = PacemakerStats()
        # Set by Replica.attach_tracer when observability is enabled.
        self.tracer = None

        self.current_view = 0
        self._timer: Optional[Event] = None
        self._consecutive_timeouts = 0
        self._started = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self, initial_view: int = 1) -> None:
        """Enter the first view and arm the timer."""
        if self._started:
            raise RuntimeError("pacemaker already started")
        self._started = True
        self._enter_view(initial_view, ViewChangeReason.START)

    def stop(self) -> None:
        """Cancel the running timer (end of simulation or crash)."""
        if self._timer is not None and self._timer.pending:
            self._timer.cancel()
        self._timer = None

    def resume(self) -> None:
        """Re-arm after a crash recovery, re-entering the current view."""
        self._started = True
        self._enter_view(max(1, self.current_view), ViewChangeReason.START)

    # ------------------------------------------------------------------
    # view advancement
    # ------------------------------------------------------------------
    def advance_on_qc(self, qc_view: int) -> bool:
        """Advance to ``qc_view + 1`` if that is ahead of the current view."""
        target = qc_view + 1
        if target <= self.current_view:
            return False
        self._consecutive_timeouts = 0
        self.stats.view_changes_on_qc += 1
        self._enter_view(target, ViewChangeReason.QC)
        return True

    def advance_on_tc(self, tc: TimeoutCertificate) -> bool:
        """Advance to ``tc.view + 1`` if that is ahead of the current view.

        A TC is quorum-level progress just like a QC: 2f+1 replicas agreed
        the view was stuck and view synchronization moved everyone forward.
        The exponential-backoff counter therefore resets here too — growing
        the timeout is only warranted while view changes *fail*, not while
        TC-driven ones keep succeeding (paper §III-B's backoff ablation).
        """
        target = tc.view + 1
        if target <= self.current_view:
            return False
        self._consecutive_timeouts = 0
        self.stats.view_changes_on_tc += 1
        self._enter_view(target, ViewChangeReason.TC)
        return True

    def process_remote_timeout(self, timeout: Timeout) -> Optional[TimeoutCertificate]:
        """Record a peer's TIMEOUT message; return a TC when one forms."""
        return self.timeout_tracker.add_and_certify(timeout)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def current_timeout(self) -> float:
        """The timer duration for the current view."""
        if self.timeout_provider is not None:
            return self.timeout_provider(self._consecutive_timeouts)
        return self.view_timeout

    def _enter_view(self, view: int, reason: ViewChangeReason) -> None:
        if self._timer is not None and self._timer.pending:
            self._timer.cancel()
        self.current_view = view
        self.stats.highest_view = max(self.stats.highest_view, view)
        self.stats.record_view_entered(view, self.scheduler.now)
        tr = self.tracer
        if tr is not None:
            tr.emit(
                self.scheduler.now, self.node_id, obs_trace.VIEW, "enter", view,
                {"reason": reason.value, "timeout": self.current_timeout()},
            )
        self._timer = self.scheduler.call_after(self.current_timeout(), self._on_timer, view)
        self.on_view_start(view, reason)

    def _on_timer(self, view: int) -> None:
        if view != self.current_view:
            return
        self.stats.local_timeouts += 1
        self._consecutive_timeouts += 1
        tr = self.tracer
        if tr is not None:
            tr.emit(
                self.scheduler.now, self.node_id, obs_trace.TIMEOUT,
                "local-timeout", view,
                {"consecutive": self._consecutive_timeouts},
            )
        # Re-arm so a stuck replica keeps signalling its timeout (the quorum
        # may have missed the earlier broadcast).
        self._timer = self.scheduler.call_after(self.current_timeout(), self._on_timer, view)
        self.on_local_timeout(view)
