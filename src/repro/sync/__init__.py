"""Block-fetch / state-sync: how a replica closes gaps in its forest.

The consensus round assumes every replica saw every certified block, but
crashes, partitions, and message loss break that assumption: a proposal whose
parent is unknown used to park forever, leaving a recovered replica unable to
vote on (or lead) the live chain.  This package restores full participation:

* :mod:`repro.sync.messages` — the two wire messages, ``BlockRequest`` and
  ``BlockResponse``, which travel through the ordinary network pipeline.
* :mod:`repro.sync.manager` — the per-replica :class:`SyncManager` that parks
  orphan proposals, issues fetch rounds, serves peers' requests, re-validates
  fetched certificates, and drives post-recovery catch-up.  Its handlers are
  plugged into the replica through the message-handler registry
  (:mod:`repro.core.dispatch`), making sync a worked example of extending the
  replica with new message types.

See ``docs/ARCHITECTURE.md`` for the message flow of one sync round and
``docs/SCENARIOS.md`` for a crash → recover → catch-up scenario exercising
it end to end.
"""

from repro.sync.manager import SyncManager, SyncSettings, SyncStats
from repro.sync.messages import BlockRequest, BlockResponse

__all__ = [
    "BlockRequest",
    "BlockResponse",
    "SyncManager",
    "SyncSettings",
    "SyncStats",
]
