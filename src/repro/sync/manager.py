"""The per-replica sync manager: parking orphans, fetching missing chains.

One :class:`SyncManager` hangs off every replica and owns the whole
block-fetch lifecycle:

* **Detection** — the replica routes every missing-parent proposal and every
  certificate for an unknown block here instead of dropping or parking them
  forever.  Orphan proposals go into the forest's bounded orphan buffer; a
  fetch for the missing ancestor is scheduled after a grace delay (one view
  timeout by default) so ordinary in-flight reordering resolves itself
  without generating traffic.
* **Fetching** — a fetch round sends a :class:`~repro.sync.messages.BlockRequest`
  to ``fanout`` peers chosen round-robin, advertising the replica's highest
  certified block as the anchor.  Rounds for the same target are debounced,
  capped (``max_rounds_per_target``), and re-anchored at the last *committed*
  block when a response fails to connect (certified-but-abandoned forks).
* **Serving** — on a request, the manager walks its own forest back from the
  target to the requester's anchor and answers with an oldest-first
  :class:`~repro.sync.messages.BlockResponse` batch (``max_batch`` blocks),
  including its certificate for the newest block sent.  Requests anchored
  below the checkpoint truncation watermark cannot be connected by blocks
  anymore and are delegated to the checkpoint manager, which answers with a
  snapshot instead (:mod:`repro.checkpoint`).
* **Ingestion** — response blocks are re-validated (embedded QC must certify
  the parent, carry a quorum of valid signatures) and inserted oldest-first
  *without voting*; draining the orphan buffer then resumes normal voting on
  the live proposals that were parked.  Duplicate and stale responses are
  idempotent: blocks already in the forest are skipped and counted.
* **Recovery** — :meth:`on_recover` starts a catch-up: request the peers'
  chain tips outright, retrying on a view-timeout cadence until some
  response arrives; after that, the ordinary missing-parent path drives the
  replica the rest of the way to the live chain head.

Both message kinds register their handlers with the replica's dispatch
registry (:mod:`repro.core.dispatch`), so the sync protocol is wired in as a
plugin rather than as replica special cases.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.core.dispatch import register_message_handler
from repro.crypto.signatures import verify
from repro.obs import trace as obs_trace
from repro.sync.messages import BlockRequest, BlockResponse
from repro.types.certificates import QuorumCertificate, vote_digest
from repro.types.messages import Message


@dataclass
class SyncSettings:
    """Knobs of the block-fetch protocol (per replica)."""

    #: Master switch; when off, orphans are parked but never fetched
    #: (the pre-sync behaviour).
    enabled: bool = True
    #: Maximum blocks per BlockResponse batch.
    max_batch: int = 32
    #: Peers asked per fetch round.
    fanout: int = 2
    #: Bound on parked orphan proposals (oldest evicted first).
    orphan_capacity: int = 256
    #: Grace delay before fetching a missing ancestor; ``None`` uses the
    #: replica's view timeout, so transient reordering never causes traffic.
    request_delay: Optional[float] = None
    #: Fetch rounds attempted per missing target before giving up.
    max_rounds_per_target: int = 8


@dataclass
class SyncStats:
    """Counters describing one replica's sync activity."""

    fetch_rounds: int = 0
    requests_sent: int = 0
    requests_received: int = 0
    responses_sent: int = 0
    responses_received: int = 0
    blocks_served: int = 0
    blocks_fetched: int = 0
    bytes_fetched: int = 0
    duplicate_blocks: int = 0
    invalid_responses: int = 0
    unconnected_responses: int = 0
    orphans_parked: int = 0
    orphans_evicted: int = 0
    targets_abandoned: int = 0


class SyncManager:
    """Owns block fetching and orphan recovery for one replica."""

    def __init__(self, replica, settings: Optional[SyncSettings] = None) -> None:
        self.replica = replica
        self.settings = settings if settings is not None else SyncSettings()
        self.stats = SyncStats()
        #: Optional MetricsCollector; the cluster builder wires the shared
        #: collector into every replica's manager (unlike consensus metrics,
        #: sync metrics are interesting on *non*-observer replicas — the
        #: recovered one).
        self.metrics = None

        self._attempts: Dict[str, int] = {}
        self._last_request: Dict[str, float] = {}
        #: Targets whose responses failed to connect: re-anchor these at the
        #: last committed block (shared by safety) instead of the highest
        #: certified one (which may sit on an abandoned fork).
        self._committed_anchor: Set[str] = set()
        self._rotation = 0
        self._catchup_pending = False
        self._catchup_rounds = 0

    # ------------------------------------------------------------------
    # timing helpers
    # ------------------------------------------------------------------
    def request_delay(self) -> float:
        """Grace before the first fetch for a newly missing ancestor."""
        if self.settings.request_delay is not None:
            return self.settings.request_delay
        return self.replica.settings.view_timeout

    # ------------------------------------------------------------------
    # detection: called by the replica's message handlers
    # ------------------------------------------------------------------
    def note_missing_parent(self, block) -> None:
        """Park a proposal whose parent is unknown; schedule a fetch for it.

        Duplicate deliveries (echoes, re-broadcasts) of an already-parked
        proposal schedule nothing — the first park's deferred request plus
        its retry timer already cover the target.
        """
        added, evicted = self.replica.forest.add_orphan(block)
        if added:
            self.stats.orphans_parked += 1
        if evicted is not None:
            self.stats.orphans_evicted += 1
        if added and self.settings.enabled:
            self.replica.scheduler.call_after(
                self.request_delay(), self._maybe_request, block.parent_id
            )

    def note_missing_certified(self, qc: QuorumCertificate) -> None:
        """A QC formed for a block we do not hold; schedule a fetch for it."""
        if self.settings.enabled:
            self.replica.scheduler.call_after(
                self.request_delay(), self._maybe_request, qc.block_id
            )

    # ------------------------------------------------------------------
    # recovery catch-up
    # ------------------------------------------------------------------
    def on_recover(self) -> None:
        """Start a catch-up round: ask peers for their chain tips."""
        if not self.settings.enabled:
            return
        self._catchup_pending = True
        self._catchup_rounds = 0
        self._catchup_tick()

    def _catchup_tick(self) -> None:
        if not self._catchup_pending or self.replica._crashed:
            return
        if self._catchup_rounds >= self.settings.max_rounds_per_target:
            self._catchup_pending = False
            self.stats.targets_abandoned += 1
            return
        self._catchup_rounds += 1
        self._send_request(None)
        self.replica.scheduler.call_after(self.request_delay(), self._catchup_tick)

    # ------------------------------------------------------------------
    # fetch rounds
    # ------------------------------------------------------------------
    def _maybe_request(self, target: str) -> None:
        """Fetch ``target`` unless it arrived meanwhile (deferred trigger)."""
        if not self.settings.enabled or self.replica._crashed:
            return
        if target in self.replica.forest:
            self._forget(target)
            return
        now = self.replica.scheduler.now
        last = self._last_request.get(target)
        if last is not None and now - last < 0.5 * self.request_delay():
            return  # a round for this target is already in flight
        self._force_request(target)

    def _force_request(self, target: str) -> None:
        """Fetch ``target`` now, bypassing the debounce (but not the cap)."""
        attempts = self._attempts.get(target, 0)
        if attempts >= self.settings.max_rounds_per_target:
            if attempts == self.settings.max_rounds_per_target:
                self._attempts[target] = attempts + 1
                self.stats.targets_abandoned += 1
            return
        self._attempts[target] = attempts + 1
        if attempts >= 1:
            # The first round went unanswered — the chosen peers may be
            # down, or the target may sit at or below our certified anchor
            # (a fork block they cannot serve against it).  Re-anchoring at
            # the last committed block makes the target servable whenever
            # any peer holds it above the shared committed prefix.
            self._committed_anchor.add(target)
        self._last_request[target] = self.replica.scheduler.now
        self._send_request(target)
        # Chosen peers may be crashed, partitioned, or missing the target
        # themselves (they answer with nothing) — re-check on a view-timeout
        # cadence until the block arrives or the round cap is hit.
        self.replica.scheduler.call_after(
            self.request_delay(), self._maybe_request, target
        )

    def _forget(self, target: str) -> None:
        self._attempts.pop(target, None)
        self._last_request.pop(target, None)
        self._committed_anchor.discard(target)

    def _anchor(self, target: Optional[str]):
        forest = self.replica.forest
        if target is not None and target in self._committed_anchor:
            return forest.last_committed()
        return forest.highest_certified()

    def _pick_peers(self) -> List[str]:
        replica = self.replica
        peers = [p for p in sorted(replica.peers) if p != replica.node_id]
        if not peers:
            return []
        count = min(self.settings.fanout, len(peers))
        start = self._rotation
        self._rotation += count
        return [peers[(start + i) % len(peers)] for i in range(count)]

    def _send_request(self, target: Optional[str]) -> None:
        replica = self.replica
        peers = self._pick_peers()
        if not peers:
            return
        anchor = self._anchor(target)
        request = BlockRequest(
            sender=replica.node_id,
            size_bytes=replica.size_model.block_request_size(),
            target_block_id=target,
            known_block_id=anchor.block_id,
            known_height=anchor.height,
        )
        self.stats.fetch_rounds += 1
        self.stats.requests_sent += len(peers)
        if self.metrics is not None:
            self.metrics.record_sync_round(replica.node_id, replica.scheduler.now)
        tr = replica.tracer
        if tr is not None:
            tr.emit(
                replica.scheduler.now, replica.node_id, obs_trace.SYNC,
                "fetch-round", replica.pacemaker.current_view,
                {"target": target, "peers": len(peers)},
            )
        for peer in peers:
            replica.network.send(replica.node_id, peer, request)

    # ------------------------------------------------------------------
    # serving requests (responder side)
    # ------------------------------------------------------------------
    def handle_request(self, message: BlockRequest) -> None:
        replica = self.replica
        forest = replica.forest
        self.stats.requests_received += 1
        target_id = message.target_block_id
        if target_id is None:
            target_id = forest.highest_certified().block_id
        if target_id not in forest:
            return  # cannot help; the requester will ask someone else
        if message.known_height < forest.base_height - 1:
            # The blocks that would connect the requester's anchor were
            # truncated below the checkpoint watermark; the latest snapshot
            # *is* the answer (when snapshot sync is on — otherwise stay
            # silent, as for any unservable request).
            replica.checkpoint.offer_snapshot(message.sender, message.known_height)
            return
        limit = self.settings.max_batch
        # Walk only the (short) uncommitted tail above the target's first
        # committed ancestor; the committed gap below it — which is where an
        # arbitrarily deep catch-up lives — is served from the main chain by
        # height in O(batch) instead of walking the whole gap.
        suffix = []
        vertex = forest.get(target_id)
        while (
            vertex is not None
            and not vertex.committed
            and vertex.block_id != message.known_block_id
            and vertex.height > message.known_height
        ):
            suffix.append(vertex.block)
            vertex = forest.maybe_get(vertex.block.parent_id)
        suffix.reverse()
        chain = []
        if (
            vertex is not None
            and vertex.committed
            and vertex.block_id != message.known_block_id
            and vertex.height > message.known_height
        ):
            chain = forest.committed_blocks_between(
                message.known_height, vertex.height, limit
            )
        if not chain or chain[-1].block_id == vertex.block_id:
            # Only append the uncommitted tail when the committed slice was
            # not capped short of it — a disconnected tail would be useless
            # to the requester.
            chain.extend(suffix)
        batch = tuple(chain[:limit])
        if not batch:
            return  # the requester already holds everything we could send
        tip_qc = forest.get(batch[-1].block_id).qc
        response = BlockResponse(
            sender=replica.node_id,
            size_bytes=replica.size_model.block_response_size(
                batch, len(tip_qc.signers) if tip_qc is not None else 0
            ),
            blocks=batch,
            target_id=target_id,
            tip_qc=tip_qc,
        )
        self.stats.responses_sent += 1
        self.stats.blocks_served += len(batch)
        cost = replica.cost_model.sync_response_build_cost(len(batch))
        replica.cpu.submit(
            cost, replica.network.send, replica.node_id, message.sender, response
        )

    # ------------------------------------------------------------------
    # ingesting responses (requester side)
    # ------------------------------------------------------------------
    def handle_response(self, message: BlockResponse) -> None:
        replica = self.replica
        forest = replica.forest
        self.stats.responses_received += 1
        self.stats.bytes_fetched += message.size_bytes
        fetched = 0
        unconnected = False
        invalid = False
        for block in message.blocks:
            if block.block_id in forest:
                self.stats.duplicate_blocks += 1
                continue
            if block.parent_id is None or block.parent_id not in forest:
                unconnected = True
                break
            if not self._block_justified(block):
                # Do not trust the rest of a bad batch (but still account
                # for the validly justified prefix already ingested).
                self.stats.invalid_responses += 1
                invalid = True
                break
            replica._accept_block(block, vote=False)
            if block.block_id not in forest:
                break  # structural rejection (height/view); stop here
            fetched += 1
        self.stats.blocks_fetched += fetched
        if message.tip_qc is not None and self._qc_valid(message.tip_qc):
            replica._note_synced_qc(message.tip_qc)
        if self.metrics is not None:
            self.metrics.record_sync_fetch(
                replica.node_id, fetched, message.size_bytes, replica.scheduler.now
            )
        tr = replica.tracer
        if tr is not None:
            tr.emit(
                replica.scheduler.now, replica.node_id, obs_trace.SYNC,
                "fetched", replica.pacemaker.current_view,
                {"blocks": fetched, "bytes": message.size_bytes},
            )
        if invalid:
            # Don't let a malicious responder steer follow-up rounds (or
            # disarm the catch-up loop); the per-round retry timer and
            # _catchup_tick re-request from the next peers.
            return
        # A usable answer arrived; concrete targets drive the rest.
        self._catchup_pending = False
        target = message.target_id
        if not target:
            return
        if target in forest:
            self._forget(target)
            return
        if fetched:
            # Progress: the gap was wider than one batch — keep going.
            self._attempts[target] = 0
            self._force_request(target)
        elif unconnected:
            # The batch did not reach down to our anchor (it sat on a fork):
            # re-anchor at the last committed block, which safety guarantees
            # the responder shares.
            self.stats.unconnected_responses += 1
            self._committed_anchor.add(target)
            self._force_request(target)

    # ------------------------------------------------------------------
    # re-validation
    # ------------------------------------------------------------------
    def _block_justified(self, block) -> bool:
        """True if the block's embedded QC certifies its parent and is valid."""
        if block.qc is None or block.qc.block_id != block.parent_id:
            return False
        return self._qc_valid(block.qc)

    def _qc_valid(self, qc: QuorumCertificate) -> bool:
        """Check a fetched certificate: quorum of valid signatures."""
        if qc.is_genesis:
            return True
        threshold = self.replica.quorum.threshold
        if len(qc.signers) < threshold:
            return False
        digest = vote_digest(qc.block_id, qc.view)
        valid_signers = set()
        for signature in qc.signatures:
            if signature.digest != digest:
                return False
            if not verify(self.replica.registry, signature):
                return False
            valid_signers.add(signature.signer)
        return len(valid_signers) >= threshold


# ----------------------------------------------------------------------
# dispatch wiring: the sync protocol's handlers and CPU costs
# ----------------------------------------------------------------------
def _request_cost(replica, message: Message) -> float:
    return replica.cost_model.sync_request_cost()


def _response_cost(replica, message: Message) -> float:
    return replica.cost_model.sync_response_verify_cost(
        len(message.blocks), sum(b.num_transactions for b in message.blocks)
    )


@register_message_handler("BlockRequest", cost=_request_cost)
def _handle_block_request(replica, message: Message) -> None:
    replica.sync.handle_request(message)


@register_message_handler("BlockResponse", cost=_response_cost)
def _handle_block_response(replica, message: Message) -> None:
    replica.sync.handle_response(message)
