"""Wire messages of the block-fetch protocol.

Two message kinds, mirroring the request/response catch-up exchange of
deployed chained-BFT systems (LibraBFT's ``BlockRetrieval``, Bamboo's block
fetching):

* :class:`BlockRequest` — "send me the chain ending at ``target_block_id``;
  I already hold ``known_block_id`` (height ``known_height``)".  A ``None``
  target means "your highest certified block", which is what a freshly
  recovered replica asks for before it knows what it missed.
* :class:`BlockResponse` — a batch of blocks in **oldest-first** order,
  walking the responder's chain from just above the requester's known block
  up to the target (bounded by the responder's batch cap).  ``tip_qc`` is the
  responder's certificate for the newest block in the batch, so the requester
  can certify it without waiting for a later proposal's embedded QC.

Both carry ``size_bytes`` like every other message and flow through the same
NIC / propagation / partition pipeline — a sync round is real traffic, not a
simulator side channel, and partitioned or crashed peers cannot answer.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.types.block import Block, GENESIS_ID
from repro.types.certificates import QuorumCertificate
from repro.types.messages import Message, UNASSIGNED_MESSAGE_ID


class BlockRequest(Message):
    """A replica's request for the blocks between its state and a target."""

    __slots__ = ("target_block_id", "known_block_id", "known_height")

    _compare_fields = ("sender", "size_bytes", "target_block_id", "known_block_id", "known_height")

    def __init__(
        self,
        sender: str,
        size_bytes: int,
        message_id: int = UNASSIGNED_MESSAGE_ID,
        target_block_id: Optional[str] = None,
        known_block_id: str = GENESIS_ID,
        known_height: int = 0,
    ) -> None:
        self.sender = sender
        self.size_bytes = size_bytes
        self.message_id = message_id
        #: Block id the requester is trying to reach; ``None`` asks the
        #: responder for the chain ending at its highest certified block.
        self.target_block_id = target_block_id
        #: Highest block on the requester's certified/committed chain — the
        #: responder walks back until it reaches this block (or its height).
        self.known_block_id = known_block_id
        self.known_height = known_height

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        target = self.target_block_id[:10] if self.target_block_id else "<tip>"
        return (
            f"BlockRequest(target={target}, known_height={self.known_height}, "
            f"from={self.sender})"
        )


class BlockResponse(Message):
    """A batch of blocks answering a :class:`BlockRequest` (oldest first)."""

    __slots__ = ("blocks", "target_id", "tip_qc")

    _compare_fields = ("sender", "size_bytes", "blocks", "target_id", "tip_qc")

    def __init__(
        self,
        sender: str,
        size_bytes: int,
        message_id: int = UNASSIGNED_MESSAGE_ID,
        blocks: Tuple[Block, ...] = (),
        target_id: str = "",
        tip_qc: Optional[QuorumCertificate] = None,
    ) -> None:
        self.sender = sender
        self.size_bytes = size_bytes
        self.message_id = message_id
        self.blocks = blocks
        #: The resolved target of the request this answers (the responder's
        #: tip id when the request asked for ``None``).
        self.target_id = target_id
        #: The responder's certificate for the newest block in ``blocks``.
        self.tip_qc = tip_qc

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BlockResponse(blocks={len(self.blocks)}, "
            f"target={self.target_id[:10]}, from={self.sender})"
        )
