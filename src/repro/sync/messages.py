"""Wire messages of the block-fetch protocol.

Two message kinds, mirroring the request/response catch-up exchange of
deployed chained-BFT systems (LibraBFT's ``BlockRetrieval``, Bamboo's block
fetching):

* :class:`BlockRequest` — "send me the chain ending at ``target_block_id``;
  I already hold ``known_block_id`` (height ``known_height``)".  A ``None``
  target means "your highest certified block", which is what a freshly
  recovered replica asks for before it knows what it missed.
* :class:`BlockResponse` — a batch of blocks in **oldest-first** order,
  walking the responder's chain from just above the requester's known block
  up to the target (bounded by the responder's batch cap).  ``tip_qc`` is the
  responder's certificate for the newest block in the batch, so the requester
  can certify it without waiting for a later proposal's embedded QC.

Both carry ``size_bytes`` like every other message and flow through the same
NIC / propagation / partition pipeline — a sync round is real traffic, not a
simulator side channel, and partitioned or crashed peers cannot answer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.types.block import Block, GENESIS_ID
from repro.types.certificates import QuorumCertificate
from repro.types.messages import Message


@dataclass(frozen=True)
class BlockRequest(Message):
    """A replica's request for the blocks between its state and a target."""

    #: Block id the requester is trying to reach; ``None`` asks the responder
    #: for the chain ending at its highest certified block.
    target_block_id: Optional[str] = None
    #: Highest block on the requester's certified/committed chain — the
    #: responder walks back until it reaches this block (or its height).
    known_block_id: str = GENESIS_ID
    known_height: int = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        target = self.target_block_id[:10] if self.target_block_id else "<tip>"
        return (
            f"BlockRequest(target={target}, known_height={self.known_height}, "
            f"from={self.sender})"
        )


@dataclass(frozen=True)
class BlockResponse(Message):
    """A batch of blocks answering a :class:`BlockRequest` (oldest first)."""

    blocks: Tuple[Block, ...] = ()
    #: The resolved target of the request this answers (the responder's tip
    #: id when the request asked for ``None``).
    target_id: str = ""
    #: The responder's certificate for the newest block in ``blocks``, if any.
    tip_qc: Optional[QuorumCertificate] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BlockResponse(blocks={len(self.blocks)}, "
            f"target={self.target_id[:10]}, from={self.sender})"
        )
