"""Vertices of the block forest."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Set

from repro.types.block import Block
from repro.types.certificates import QuorumCertificate


@dataclass
class Vertex:
    """A block together with the bookkeeping the forest maintains for it.

    ``qc`` is the certificate *for this block* (set once a quorum of votes
    for the block has been observed), which is distinct from ``block.qc``,
    the certificate the proposer embedded for an ancestor.
    """

    block: Block
    children: Set[str] = field(default_factory=set)
    qc: Optional[QuorumCertificate] = None
    committed: bool = False
    committed_at_view: Optional[int] = None
    added_at: float = 0.0

    @property
    def block_id(self) -> str:
        """Identifier of the wrapped block."""
        return self.block.block_id

    @property
    def height(self) -> int:
        """Chain height of the wrapped block."""
        return self.block.height

    @property
    def view(self) -> int:
        """View in which the wrapped block was proposed."""
        return self.block.view

    @property
    def certified(self) -> bool:
        """True once a QC for this block has been recorded."""
        return self.qc is not None
