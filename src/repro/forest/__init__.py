"""Block forest: the data module shared by every cBFT protocol (paper §III-A)."""

from repro.forest.forest import BlockForest, ForkStats
from repro.forest.vertex import Vertex

__all__ = ["BlockForest", "ForkStats", "Vertex"]
