"""The block forest: height-indexed block trees with pruning and a main chain.

The forest keeps every block a replica has seen, indexed by id and by height.
It answers the structural questions the safety rules need (ancestry, chain
extension, longest certified chain) and maintains the committed *main chain*
used for consistency checks across replicas (paper §III-A).

The forest also tracks *orphans*: proposals whose parent has not arrived,
parked in a bounded FIFO buffer keyed by the missing parent id.  The sync
subsystem (:mod:`repro.sync`) consults this buffer to decide what to fetch
and the replica drains it as parents arrive — whether through ordinary
delivery or a :class:`~repro.sync.messages.BlockResponse`.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, List, Optional, Set, Tuple

from repro.crypto.digest import digest_fields
from repro.forest.vertex import Vertex
from repro.types.block import Block, make_genesis
from repro.types.certificates import QuorumCertificate


class ForestError(ValueError):
    """Raised when a block cannot be added to the forest."""


@dataclass
class ForkStats:
    """Counters describing forking observed by one replica."""

    blocks_added: int = 0
    blocks_committed: int = 0
    blocks_forked: int = 0
    transactions_forked: int = 0
    views_with_conflicts: Set[int] = field(default_factory=set)

    @property
    def fork_rate(self) -> float:
        """Fraction of added (non-genesis) blocks that ended up abandoned."""
        if self.blocks_added == 0:
            return 0.0
        return self.blocks_forked / self.blocks_added


class BlockForest:
    """Stores blocks, their certification state, and the committed chain."""

    def __init__(self, orphan_capacity: int = 256) -> None:
        genesis, genesis_qc = make_genesis()
        self.genesis = genesis
        self._vertices: Dict[str, Vertex] = {}
        self._by_height: Dict[int, List[str]] = defaultdict(list)
        #: Ids of the committed main chain, genesis first; list index equals
        #: height (every commit extends the last committed block).  This is
        #: the *commit-log index*: it outlives truncation — blocks below the
        #: checkpoint watermark drop their vertices (and transactions) but
        #: keep their id here, which is what keeps cross-replica consistency
        #: hashes comparable between replicas truncated at different heights.
        self._committed_ids: List[str] = []
        self._pruned_height = -1
        #: Lowest height whose block (vertex) is still retained; heights
        #: below it were truncated away by a checkpoint (see repro.checkpoint).
        self._base_height = 0
        #: The lowest retained committed block: genesis until a checkpoint is
        #: installed or truncation runs, then the checkpoint block.
        self._root_id = genesis.block_id
        self.stats = ForkStats()

        #: Parked blocks whose parent is missing: parent id -> blocks, plus a
        #: FIFO of (block id, parent id) pairs for O(1) bounded eviction.
        self.orphan_capacity = orphan_capacity
        self._orphans: Dict[str, List[Block]] = {}
        self._orphan_order: Deque[Tuple[str, str]] = deque()

        root = Vertex(block=genesis, qc=genesis_qc)
        root.committed = True
        root.committed_at_view = 0
        self._vertices[genesis.block_id] = root
        self._by_height[0].append(genesis.block_id)
        self._committed_ids.append(genesis.block_id)
        self._highest_certified_id = genesis.block_id

    # ------------------------------------------------------------------
    # insertion and certification
    # ------------------------------------------------------------------
    def add_block(self, block: Block, added_at: float = 0.0) -> Vertex:
        """Insert ``block``; its parent must already be present.

        Re-inserting a known block is a no-op (messages can be duplicated or
        echoed).  Structural invariants — height is parent height + 1, view
        strictly greater than the parent's view — are validated here, which
        is the semantic check the safety rules delegate to the data module.
        """
        if block.block_id in self._vertices:
            return self._vertices[block.block_id]
        if block.parent_id is None or block.parent_id not in self._vertices:
            raise ForestError(f"unknown parent {block.parent_id!r} for block {block.block_id[:10]}")
        parent = self._vertices[block.parent_id]
        if block.height != parent.height + 1:
            raise ForestError(
                f"bad height {block.height} for child of height {parent.height}"
            )
        if block.view <= parent.view:
            raise ForestError(
                f"view {block.view} does not advance past parent view {parent.view}"
            )
        vertex = Vertex(block=block, added_at=added_at)
        self._vertices[block.block_id] = vertex
        self._by_height[block.height].append(block.block_id)
        parent.children.add(block.block_id)
        self.stats.blocks_added += 1
        if len(self._by_height[block.height]) > 1:
            self.stats.views_with_conflicts.add(block.view)
        return vertex

    def record_qc(self, qc: QuorumCertificate) -> Optional[Vertex]:
        """Attach a certificate to the block it certifies (if known)."""
        vertex = self._vertices.get(qc.block_id)
        if vertex is None:
            return None
        if vertex.qc is None or qc.view > vertex.qc.view:
            vertex.qc = qc
        if vertex.view > self._vertices[self._highest_certified_id].view:
            self._highest_certified_id = vertex.block_id
        return vertex

    # ------------------------------------------------------------------
    # orphan tracking (blocks waiting for a missing parent)
    # ------------------------------------------------------------------
    def add_orphan(self, block: Block) -> tuple:
        """Park ``block`` until its parent arrives; bounded FIFO eviction.

        Returns ``(added, evicted)``: ``added`` is False for blocks already
        in the forest or already parked (duplicates and echoes are no-ops);
        ``evicted`` is the oldest parked block dropped to stay within
        ``orphan_capacity``, or ``None``.
        """
        if block.parent_id is None or block.block_id in self._vertices:
            return (False, None)
        bucket = self._orphans.setdefault(block.parent_id, [])
        if any(b.block_id == block.block_id for b in bucket):
            return (False, None)
        bucket.append(block)
        self._orphan_order.append((block.block_id, block.parent_id))
        evicted = None
        if len(self._orphan_order) > self.orphan_capacity:
            oldest_id, oldest_parent = self._orphan_order.popleft()
            parked = self._orphans.get(oldest_parent, [])
            for parked_block in parked:
                if parked_block.block_id == oldest_id:
                    evicted = parked_block
                    parked.remove(parked_block)
                    break
            if not parked:
                self._orphans.pop(oldest_parent, None)
        return (True, evicted)

    def pop_orphans(self, parent_id: str) -> List[Block]:
        """Remove and return the blocks parked under ``parent_id``."""
        parked = self._orphans.pop(parent_id, [])
        if parked:
            self._orphan_order = deque(
                pair for pair in self._orphan_order if pair[1] != parent_id
            )
        return parked

    def orphan_parents(self) -> List[str]:
        """Missing parent ids that have blocks waiting on them."""
        return list(self._orphans)

    @property
    def orphan_count(self) -> int:
        """Number of blocks currently parked."""
        return len(self._orphan_order)

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def __contains__(self, block_id: str) -> bool:
        return block_id in self._vertices

    def __len__(self) -> int:
        return len(self._vertices)

    def get(self, block_id: str) -> Vertex:
        """Return the vertex for ``block_id`` (KeyError if unknown)."""
        return self._vertices[block_id]

    def get_block(self, block_id: str) -> Block:
        """Return the block for ``block_id`` (KeyError if unknown)."""
        return self._vertices[block_id].block

    def maybe_get(self, block_id: Optional[str]) -> Optional[Vertex]:
        """Return the vertex for ``block_id`` or None."""
        if block_id is None:
            return None
        return self._vertices.get(block_id)

    def parent(self, block_id: str) -> Optional[Vertex]:
        """Return the parent vertex of ``block_id`` if it is in the forest."""
        vertex = self._vertices[block_id]
        return self.maybe_get(vertex.block.parent_id)

    def children(self, block_id: str) -> List[Vertex]:
        """Return the child vertices of ``block_id``."""
        vertex = self._vertices[block_id]
        return [self._vertices[child] for child in sorted(vertex.children)]

    def blocks_at_height(self, height: int) -> List[Vertex]:
        """All vertices at ``height`` (more than one indicates a fork)."""
        return [self._vertices[b] for b in self._by_height.get(height, [])]

    def ancestors(self, block_id: str, include_self: bool = False) -> Iterable[Vertex]:
        """Yield ancestors of ``block_id`` walking toward genesis."""
        vertex = self._vertices[block_id]
        if include_self:
            yield vertex
        parent_id = vertex.block.parent_id
        while parent_id is not None and parent_id in self._vertices:
            vertex = self._vertices[parent_id]
            yield vertex
            parent_id = vertex.block.parent_id

    def is_ancestor(self, ancestor_id: str, descendant_id: str) -> bool:
        """True if ``ancestor_id`` lies on the path from ``descendant_id`` to genesis."""
        if ancestor_id == descendant_id:
            return True
        if ancestor_id not in self._vertices or descendant_id not in self._vertices:
            return False
        target_height = self._vertices[ancestor_id].height
        current = self._vertices[descendant_id]
        while current.block.parent_id is not None and current.height > target_height:
            parent = self._vertices.get(current.block.parent_id)
            if parent is None:
                return False
            current = parent
        return current.block_id == ancestor_id

    def extends(self, block: Block, ancestor_id: str) -> bool:
        """True if ``block`` (possibly not yet inserted) extends ``ancestor_id``."""
        if block.block_id == ancestor_id:
            return True
        if block.parent_id is None:
            return False
        if block.parent_id == ancestor_id:
            return True
        if block.parent_id not in self._vertices:
            return False
        return self.is_ancestor(ancestor_id, block.parent_id)

    # ------------------------------------------------------------------
    # certified chains
    # ------------------------------------------------------------------
    def highest_certified(self) -> Vertex:
        """The certified vertex with the highest view (genesis if none).

        Tracked incrementally by :meth:`record_qc` (and repaired by
        :meth:`prune`), so the lookup is O(1).  It is the anchor every sync
        request advertises, which makes it per-missing-parent-event rather
        than per-message — cheap to call however often sync needs it.
        """
        return self._vertices[self._highest_certified_id]

    def certified_vertices(self) -> List[Vertex]:
        """Every retained vertex holding a QC, in insertion order.

        Safety audits (the fuzz harness's certified-safety oracle) walk this
        to assert that no view certified two different blocks.  Truncated
        history is out of scope: blocks below the checkpoint watermark were
        committed, and conflicting commits already raise :class:`ForestError`.
        """
        return [vertex for vertex in self._vertices.values() if vertex.certified]

    def _rescan_highest_certified(self) -> None:
        """Repair the highest-certified cache by scanning (after pruning)."""
        best = self._vertices[self._root_id]
        for vertex in self._vertices.values():
            if vertex.certified and vertex.view > best.view:
                best = vertex
        self._highest_certified_id = best.block_id

    def longest_certified_tip(self) -> Vertex:
        """Tip of the longest chain of certified blocks (Streamlet's rule).

        The tip is the certified vertex of maximal height.  In every state
        reachable under Streamlet's voting rule this coincides with the tip
        of the longest fully-notarized chain, because a block only attracts
        votes (and hence a certificate) when its entire ancestor chain is
        already notarized; using the height keeps the lookup linear in the
        forest size.  Ties break toward the higher view, then lexicographic
        id, so every replica with the same forest picks the same tip.
        """
        best = self._vertices[self._root_id]
        for vertex in self._vertices.values():
            if not vertex.certified:
                continue
            if (vertex.height, vertex.view, vertex.block_id) > (
                best.height,
                best.view,
                best.block_id,
            ):
                best = vertex
        return best

    def certified_chain_length(self, block_id: str) -> int:
        """Number of certified blocks on the path from genesis to ``block_id``."""
        count = 0
        for vertex in self.ancestors(block_id, include_self=True):
            if vertex.certified:
                count += 1
        return count

    # ------------------------------------------------------------------
    # commitment and the main chain
    # ------------------------------------------------------------------
    @property
    def committed_chain(self) -> List[str]:
        """Block ids of the main chain in commit order (genesis first)."""
        return list(self._committed_ids)

    def committed_prefix(self, height: int) -> Tuple[str, ...]:
        """Ids of the committed main chain up to ``height`` inclusive.

        One copy of the prefix, not a full-chain copy then a slice — this is
        what snapshot materialization ships (see :mod:`repro.checkpoint`).
        """
        return tuple(self._committed_ids[: height + 1])

    @property
    def committed_height(self) -> int:
        """Height of the most recently committed block."""
        return len(self._committed_ids) - 1

    @property
    def base_height(self) -> int:
        """Lowest height whose block is still retained (the truncation watermark).

        Zero until :meth:`truncate_below` or :meth:`install_checkpoint` runs;
        blocks below it survive only as ids in the commit-log index.
        """
        return self._base_height

    def last_committed(self) -> Vertex:
        """The most recently committed vertex."""
        return self._vertices[self._committed_ids[-1]]

    def committed_blocks_between(
        self, low_height: int, high_height: int, limit: int
    ) -> List[Block]:
        """Main-chain blocks with ``low_height < height <= high_height``.

        Oldest first, at most ``limit`` blocks.  The committed chain is
        contiguous from genesis (every commit extends the last committed
        block), so list index equals height and the lookup is O(limit) —
        this is what lets a sync responder serve an arbitrarily deep
        catch-up request without walking its whole forest.

        Blocks below :attr:`base_height` no longer exist; a range starting
        under the watermark cannot produce a batch that connects to the
        requester's anchor, so it returns empty (the sync responder answers
        such requests with a snapshot instead, see :mod:`repro.checkpoint`).
        """
        start = max(low_height + 1, 0)
        if start < self._base_height:
            return []
        end = min(high_height, self.committed_height, start + limit - 1)
        return [self._vertices[b].block for b in self._committed_ids[start : end + 1]]

    def commit(self, block_id: str, at_view: int) -> List[Vertex]:
        """Commit ``block_id`` and every uncommitted ancestor.

        Returns the newly committed vertices in chain order (oldest first).
        Committing a block that conflicts with an already committed block is
        a safety violation and raises — tests rely on this to detect unsound
        rule implementations.
        """
        if block_id not in self._vertices:
            raise ForestError(f"cannot commit unknown block {block_id!r}")
        target = self._vertices[block_id]
        if target.committed:
            return []
        last = self.last_committed()
        if not self.is_ancestor(last.block_id, block_id):
            raise ForestError(
                "safety violation: committing a block that conflicts with the "
                f"committed chain (last committed {last.block_id[:10]} at height "
                f"{last.height}, new {block_id[:10]} at height {target.height})"
            )
        newly: List[Vertex] = []
        cursor: Optional[Vertex] = target
        while cursor is not None and not cursor.committed:
            newly.append(cursor)
            cursor = self.maybe_get(cursor.block.parent_id)
        newly.reverse()
        for vertex in newly:
            vertex.committed = True
            vertex.committed_at_view = at_view
            self._committed_ids.append(vertex.block_id)
            self.stats.blocks_committed += 1
        return newly

    def forked_blocks_below(self, height: int) -> List[Vertex]:
        """Uncommitted vertices at or below ``height`` (abandoned branches)."""
        forked = []
        for h in range(self._pruned_height + 1, height + 1):
            for block_id in self._by_height.get(h, []):
                vertex = self._vertices[block_id]
                if not vertex.committed:
                    forked.append(vertex)
        return forked

    def prune(self, height: int) -> List[Vertex]:
        """Drop all vertices at or below ``height`` except the main chain.

        Returns the removed (forked) vertices so the caller can recycle their
        transactions into the mempool, as the paper's evaluation does.
        Committed vertices are kept: they form the main chain used for
        consistency checks; a production system would move them to cold
        storage instead.
        """
        removed = self.forked_blocks_below(height)
        for vertex in removed:
            parent = self.maybe_get(vertex.block.parent_id)
            if parent is not None:
                parent.children.discard(vertex.block_id)
            self._by_height[vertex.height].remove(vertex.block_id)
            del self._vertices[vertex.block_id]
            self.stats.blocks_forked += 1
            self.stats.transactions_forked += vertex.block.num_transactions
        self._pruned_height = max(self._pruned_height, height)
        if self._highest_certified_id not in self._vertices:
            # The cached highest-certified vertex was on a pruned fork.
            self._rescan_highest_certified()
        return removed

    def consistency_hash(self, height: Optional[int] = None) -> str:
        """Hash of the committed chain up to ``height`` (default: full chain).

        Two replicas whose committed chains agree produce identical hashes;
        integration tests use this to assert safety across the cluster.
        Computed from the commit-log index (ids only), so it stays comparable
        across replicas truncated at different checkpoint heights.
        """
        ids = self._committed_ids if height is None else self._committed_ids[: height + 1]
        return digest_fields("chain", *ids)

    def committed_transactions(self) -> List[str]:
        """Transaction ids in committed order (for end-to-end ordering checks).

        Only blocks still retained contribute — transactions below the
        truncation watermark travel in checkpoints as applied state, not as
        a replayable log.
        """
        txids: List[str] = []
        for block_id in self._committed_ids[self._base_height :]:
            for tx in self._vertices[block_id].block.transactions:
                txids.append(tx.txid)
        return txids

    # ------------------------------------------------------------------
    # checkpoint support: truncation and snapshot install
    # ------------------------------------------------------------------
    def truncate_below(self, height: int) -> int:
        """Drop every vertex outside the subtree rooted at main-chain ``height``.

        The committed block at ``height`` becomes the forest's new root; its
        committed ancestors *and* any branch not descending from it are
        removed (such branches conflict with the committed chain and can
        never be extended by an honest proposal).  Ids of truncated committed
        blocks remain in the commit-log index so ``committed_chain`` /
        ``consistency_hash`` keep working.  Returns the number of vertices
        removed.  Orphan parking is untouched: parked blocks waiting on
        truncated parents simply age out of the bounded FIFO.
        """
        if height <= self._base_height:
            return 0
        if height > self.committed_height:
            raise ForestError(
                f"cannot truncate below uncommitted height {height} "
                f"(committed height is {self.committed_height})"
            )
        root_id = self._committed_ids[height]
        keep = {root_id}
        stack = [root_id]
        while stack:
            for child in self._vertices[stack.pop()].children:
                keep.add(child)
                stack.append(child)
        removed = 0
        for block_id in list(self._vertices):
            if block_id in keep:
                continue
            vertex = self._vertices.pop(block_id)
            bucket = self._by_height.get(vertex.height)
            if bucket is not None:
                bucket.remove(block_id)
                if not bucket:
                    del self._by_height[vertex.height]
            removed += 1
        self._root_id = root_id
        self._base_height = height
        self._pruned_height = max(self._pruned_height, height)
        if self._highest_certified_id not in self._vertices:
            self._rescan_highest_certified()
        return removed

    def install_checkpoint(self, block: Block, qc: Optional[QuorumCertificate], committed_ids: List[str]) -> None:
        """Reset the forest to a single committed root: the checkpoint block.

        Used by a recovered or far-behind replica installing a peer's
        snapshot (:mod:`repro.checkpoint`): every local vertex is discarded
        and replaced by the checkpoint block, already committed, with ``qc``
        as its certificate.  ``committed_ids`` is the full commit-log index
        up to and including the checkpoint block.  The caller is responsible
        for having validated the certificate.
        """
        if not committed_ids or committed_ids[-1] != block.block_id:
            raise ForestError("checkpoint id log must end at the checkpoint block")
        if len(committed_ids) != block.height + 1:
            raise ForestError(
                f"checkpoint id log length {len(committed_ids)} does not match "
                f"checkpoint height {block.height}"
            )
        if block.height <= self.committed_height:
            raise ForestError(
                f"checkpoint at height {block.height} is not ahead of the "
                f"committed height {self.committed_height}"
            )
        root = Vertex(block=block, qc=qc)
        root.committed = True
        root.committed_at_view = block.view
        self._vertices = {block.block_id: root}
        self._by_height = defaultdict(list)
        self._by_height[block.height].append(block.block_id)
        self._committed_ids = list(committed_ids)
        self._root_id = block.block_id
        self._base_height = block.height
        self._pruned_height = max(self._pruned_height, block.height)
        self._highest_certified_id = block.block_id
