"""Key pairs and the cluster-wide key registry.

Two signing schemes share one interface:

* ``hmac`` — the original simulated scheme.  Tags are HMAC-SHA256 over the
  digest; verification recomputes the tag, which works because the registry
  holds every node's secret (a stand-in for a permissioned PKI).  Cheap and
  deterministic, so the discrete-event model charges *modeled* crypto costs
  instead.
* ``ed25519`` — real signatures via the pure-Python RFC 8032 implementation
  in :mod:`repro.crypto.ed25519`.  Used by the deployment runtime
  (:mod:`repro.transport`), where crypto cost is *measured* wall-clock work.

Both expose ``mac(message) -> tag`` and ``verify_tag(message, tag) -> bool``,
so :func:`repro.crypto.signatures.verify` needs no knowledge of the scheme.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass, field
from typing import Dict

from repro.crypto import ed25519


@dataclass(frozen=True)
class KeyPair:
    """A replica's HMAC-based signing identity (simulation default).

    The "private key" is an HMAC secret derived from the node id and a
    deployment seed; the "public key" is its hash.  Verification requires
    knowing the secret, which the :class:`KeyRegistry` holds for every node —
    this mirrors a permissioned deployment where the membership (and hence
    every public key) is fixed in the configuration.
    """

    node_id: str
    secret: bytes = field(repr=False)

    @property
    def public_key(self) -> str:
        """Hex identifier of the public half of the key."""
        return hashlib.sha256(b"pub:" + self.secret).hexdigest()

    def mac(self, message: bytes) -> bytes:
        """Return the raw authentication tag over ``message``."""
        return hmac.new(self.secret, message, hashlib.sha256).digest()

    def verify_tag(self, message: bytes, tag: bytes) -> bool:
        """Check an authentication tag produced by :meth:`mac`."""
        return hmac.compare_digest(self.mac(message), tag)

    @classmethod
    def generate(cls, node_id: str, deployment_seed: int = 0) -> "KeyPair":
        """Deterministically derive the key pair for ``node_id``."""
        secret = hashlib.sha256(f"key:{deployment_seed}:{node_id}".encode("utf-8")).digest()
        return cls(node_id=node_id, secret=secret)


@dataclass(frozen=True)
class Ed25519KeyPair:
    """A replica's Ed25519 signing identity (deployment mode).

    ``secret`` is the 32-byte RFC 8032 seed.  The same deterministic
    derivation as :class:`KeyPair` keeps deployments reproducible: the seed is
    a hash of the node id and deployment seed, so every process in a cluster
    derives the same membership without key exchange.
    """

    node_id: str
    secret: bytes = field(repr=False)

    @property
    def public_key(self) -> str:
        """Hex encoding of the 32-byte Ed25519 public key."""
        return self.public_key_bytes.hex()

    @property
    def public_key_bytes(self) -> bytes:
        cached = _PUBLIC_KEY_CACHE.get(self.secret)
        if cached is None:
            cached = ed25519.public_key(self.secret)
            _PUBLIC_KEY_CACHE[self.secret] = cached
        return cached

    def mac(self, message: bytes) -> bytes:
        """Sign ``message``; the 64-byte signature is the tag."""
        return ed25519.sign(self.secret, message)

    def verify_tag(self, message: bytes, tag: bytes) -> bool:
        """Verify an Ed25519 signature against this node's public key."""
        return ed25519.verify(self.public_key_bytes, message, tag)

    @classmethod
    def generate(cls, node_id: str, deployment_seed: int = 0) -> "Ed25519KeyPair":
        """Deterministically derive the key pair for ``node_id``."""
        secret = hashlib.sha256(f"ed25519:{deployment_seed}:{node_id}".encode("utf-8")).digest()
        return cls(node_id=node_id, secret=secret)


#: Memoized seed -> public key; deriving one costs a scalar multiplication
#: (~ms in pure Python) and verification needs it on every vote.
_PUBLIC_KEY_CACHE: Dict[bytes, bytes] = {}

#: Signing scheme name -> key-pair class.
SIGNING_SCHEMES = {
    "hmac": KeyPair,
    "ed25519": Ed25519KeyPair,
}


def available_schemes() -> list[str]:
    """Names of the registered signing schemes."""
    return sorted(SIGNING_SCHEMES)


class KeyRegistry:
    """Holds the key pairs of every node in the deployment.

    In a permissioned blockchain the validator set and its public keys are
    part of the static configuration, so every replica can verify every other
    replica's signatures.  The registry plays that role for both the
    simulation (``scheme="hmac"``) and the real-transport deployment
    (``scheme="ed25519"``).
    """

    def __init__(self, deployment_seed: int = 0, scheme: str = "hmac") -> None:
        if scheme not in SIGNING_SCHEMES:
            raise ValueError(
                f"unknown signing scheme {scheme!r}; expected one of {available_schemes()}"
            )
        self.deployment_seed = deployment_seed
        self.scheme = scheme
        self._keypair_class = SIGNING_SCHEMES[scheme]
        self._keys: Dict[str, object] = {}

    def register(self, node_id: str):
        """Create (or return) the key pair for ``node_id``."""
        if node_id not in self._keys:
            self._keys[node_id] = self._keypair_class.generate(node_id, self.deployment_seed)
        return self._keys[node_id]

    def get(self, node_id: str):
        """Return the key pair for a registered node."""
        if node_id not in self._keys:
            raise KeyError(f"unknown node: {node_id!r}")
        return self._keys[node_id]

    def known_nodes(self) -> list[str]:
        """All node ids with registered keys."""
        return sorted(self._keys)

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._keys

    def __len__(self) -> int:
        return len(self._keys)
