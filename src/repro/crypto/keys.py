"""Simulated key pairs and the cluster-wide key registry."""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass, field
from typing import Dict


@dataclass(frozen=True)
class KeyPair:
    """A replica's signing identity.

    The "private key" is an HMAC secret derived from the node id and a
    deployment seed; the "public key" is its hash.  Verification requires
    knowing the secret, which the :class:`KeyRegistry` holds for every node —
    this mirrors a permissioned deployment where the membership (and hence
    every public key) is fixed in the configuration.
    """

    node_id: str
    secret: bytes = field(repr=False)

    @property
    def public_key(self) -> str:
        """Hex identifier of the public half of the key."""
        return hashlib.sha256(b"pub:" + self.secret).hexdigest()

    def mac(self, message: bytes) -> bytes:
        """Return the raw authentication tag over ``message``."""
        return hmac.new(self.secret, message, hashlib.sha256).digest()

    @classmethod
    def generate(cls, node_id: str, deployment_seed: int = 0) -> "KeyPair":
        """Deterministically derive the key pair for ``node_id``."""
        secret = hashlib.sha256(f"key:{deployment_seed}:{node_id}".encode("utf-8")).digest()
        return cls(node_id=node_id, secret=secret)


class KeyRegistry:
    """Holds the key pairs of every node in the deployment.

    In a permissioned blockchain the validator set and its public keys are
    part of the static configuration, so every replica can verify every other
    replica's signatures.  The registry plays that role for the simulation.
    """

    def __init__(self, deployment_seed: int = 0) -> None:
        self.deployment_seed = deployment_seed
        self._keys: Dict[str, KeyPair] = {}

    def register(self, node_id: str) -> KeyPair:
        """Create (or return) the key pair for ``node_id``."""
        if node_id not in self._keys:
            self._keys[node_id] = KeyPair.generate(node_id, self.deployment_seed)
        return self._keys[node_id]

    def get(self, node_id: str) -> KeyPair:
        """Return the key pair for a registered node."""
        if node_id not in self._keys:
            raise KeyError(f"unknown node: {node_id!r}")
        return self._keys[node_id]

    def known_nodes(self) -> list[str]:
        """All node ids with registered keys."""
        return sorted(self._keys)

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._keys

    def __len__(self) -> int:
        return len(self._keys)
