"""Hashing helpers used for block identifiers and message digests."""

from __future__ import annotations

import hashlib
from typing import Iterable, Union

Hashable = Union[str, bytes, int, float, None]


def digest_bytes(data: bytes) -> str:
    """Return the hex SHA-256 digest of ``data``."""
    return hashlib.sha256(data).hexdigest()


def digest_fields(*fields: Hashable) -> str:
    """Digest a sequence of primitive fields with unambiguous framing.

    Each field is rendered with a type tag and a length prefix so that
    ``digest_fields("ab", "c") != digest_fields("a", "bc")``.
    """
    hasher = hashlib.sha256()
    for field in fields:
        encoded = _encode(field)
        hasher.update(len(encoded).to_bytes(4, "big"))
        hasher.update(encoded)
    return hasher.hexdigest()


def digest_many(fields: Iterable[Hashable]) -> str:
    """Digest an iterable of fields (convenience wrapper)."""
    return digest_fields(*fields)


def digest_strings(fields: Iterable[str]) -> str:
    """Digest an iterable of strings; equals ``digest_fields(*fields)``.

    Specialized for the block-id hot path (one digest over every txid in a
    block): the frames are assembled into a single buffer and hashed with
    one C-level update instead of two per field.
    """
    parts = []
    append = parts.append
    for field in fields:
        encoded = field.encode("utf-8")
        append((len(encoded) + 1).to_bytes(4, "big"))
        append(b"S")
        append(encoded)
    return hashlib.sha256(b"".join(parts)).hexdigest()


def _encode(field: Hashable) -> bytes:
    if field is None:
        return b"N"
    if isinstance(field, bytes):
        return b"B" + field
    if isinstance(field, str):
        return b"S" + field.encode("utf-8")
    if isinstance(field, bool):
        return b"O" + (b"1" if field else b"0")
    if isinstance(field, int):
        return b"I" + str(field).encode("ascii")
    if isinstance(field, float):
        return b"F" + repr(field).encode("ascii")
    raise TypeError(f"cannot digest field of type {type(field)!r}")
