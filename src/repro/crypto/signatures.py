"""Signatures over message digests, generic over the signing scheme."""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.keys import KeyPair, KeyRegistry


@dataclass(frozen=True)
class Signature:
    """A signature binding a signer to a digest.

    ``tag`` is the authentication tag produced by the signer's key over the
    digest.  Equality and hashing include the signer so a quorum certificate
    can deduplicate votes per signer.
    """

    signer: str
    digest: str
    tag: bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Signature(signer={self.signer!r}, digest={self.digest[:12]}...)"


def sign(keypair: KeyPair, digest: str) -> Signature:
    """Sign ``digest`` with ``keypair``."""
    tag = keypair.mac(digest.encode("ascii"))
    return Signature(signer=keypair.node_id, digest=digest, tag=tag)


def verify(registry: KeyRegistry, signature: Signature) -> bool:
    """Check that ``signature`` was produced by its claimed signer.

    Returns ``False`` for unknown signers or forged tags rather than raising,
    because a Byzantine peer may send arbitrary garbage and the replica must
    simply discard it.
    """
    if signature.signer not in registry:
        return False
    keypair = registry.get(signature.signer)
    return keypair.verify_tag(signature.digest.encode("ascii"), signature.tag)
