"""Simulated cryptographic substrate.

Bamboo uses secp256k1 signatures for votes and quorum certificates.  In this
reproduction the *cost* of cryptography matters (it is the t_CPU term of the
paper's model) but its hardness does not, so signatures are simulated with
keyed SHA-256 digests.  They still bind a signer identity to a message digest
and are checked on receipt, so protocol logic (quorum thresholds, duplicate
vote rejection, certificate validity) exercises the same code paths a real
deployment would.
"""

from repro.crypto.costs import CryptoCostModel
from repro.crypto.digest import digest_bytes, digest_fields
from repro.crypto.keys import KeyPair, KeyRegistry
from repro.crypto.signatures import Signature, sign, verify

__all__ = [
    "CryptoCostModel",
    "KeyPair",
    "KeyRegistry",
    "Signature",
    "digest_bytes",
    "digest_fields",
    "sign",
    "verify",
]
