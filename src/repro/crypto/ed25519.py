"""Pure-Python Ed25519 (RFC 8032) for the real-transport deployment mode.

The simulation charges *modeled* CPU costs for cryptography and authenticates
with cheap HMAC tags (:mod:`repro.crypto.keys`).  The deployment runtime
(:mod:`repro.transport`) instead *measures* crypto cost, which requires an
actual signature scheme.  The container has no ``cryptography`` / ``nacl``
wheels, so this module implements Ed25519 from the RFC 8032 reference
equations on the standard library alone: twisted-Edwards point arithmetic in
extended homogeneous coordinates, SHA-512 key expansion, and the canonical
little-endian encodings.

This is a correctness-first implementation (validated against the RFC 8032
test vectors in ``tests/test_transport.py``), not a constant-time one — fine
for benchmarking a reproduction, unsuitable for protecting real secrets.
Speed is milliseconds per operation, which is exactly the point: the
deployment mode exists to *measure* that cost instead of modeling it.
"""

from __future__ import annotations

import hashlib
from typing import Tuple

__all__ = ["public_key", "sign", "verify", "SIGNATURE_SIZE", "SEED_SIZE"]

#: Ed25519 signatures are 64 bytes; seeds and public keys 32.
SIGNATURE_SIZE = 64
SEED_SIZE = 32

_P = 2 ** 255 - 19
_L = 2 ** 252 + 27742317777372353535851937790883648493
_D = (-121665 * pow(121666, _P - 2, _P)) % _P
_SQRT_M1 = pow(2, (_P - 1) // 4, _P)

#: A point is (X, Y, Z, T) in extended homogeneous coordinates with
#: x = X/Z, y = Y/Z, x*y = T/Z.
_Point = Tuple[int, int, int, int]

_IDENTITY: _Point = (0, 1, 1, 0)


def _sha512(data: bytes) -> bytes:
    return hashlib.sha512(data).digest()


def _point_add(p: _Point, q: _Point) -> _Point:
    x1, y1, z1, t1 = p
    x2, y2, z2, t2 = q
    a = (y1 - x1) * (y2 - x2) % _P
    b = (y1 + x1) * (y2 + x2) % _P
    c = 2 * t1 * t2 * _D % _P
    d = 2 * z1 * z2 % _P
    e, f, g, h = b - a, d - c, d + c, b + a
    return (e * f % _P, g * h % _P, f * g % _P, e * h % _P)


def _point_mul(scalar: int, point: _Point) -> _Point:
    result = _IDENTITY
    while scalar > 0:
        if scalar & 1:
            result = _point_add(result, point)
        point = _point_add(point, point)
        scalar >>= 1
    return result


def _point_equal(p: _Point, q: _Point) -> bool:
    # x1/z1 == x2/z2 and y1/z1 == y2/z2, cross-multiplied.
    x1, y1, z1, _ = p
    x2, y2, z2, _ = q
    return (x1 * z2 - x2 * z1) % _P == 0 and (y1 * z2 - y2 * z1) % _P == 0


def _recover_x(y: int, sign_bit: int) -> int:
    """Solve the curve equation for x given y (RFC 8032 §5.1.3)."""
    if y >= _P:
        raise ValueError("invalid point encoding: y out of range")
    x2 = (y * y - 1) * pow(_D * y * y + 1, _P - 2, _P) % _P
    x = pow(x2, (_P + 3) // 8, _P)
    if (x * x - x2) % _P != 0:
        x = x * _SQRT_M1 % _P
    if (x * x - x2) % _P != 0:
        raise ValueError("invalid point encoding: not on the curve")
    if x == 0 and sign_bit == 1:
        raise ValueError("invalid point encoding: x is zero with sign bit set")
    if x & 1 != sign_bit:
        x = _P - x
    return x


# The standard base point: y = 4/5, x recovered with the even sign.
_BY = 4 * pow(5, _P - 2, _P) % _P
_BX = _recover_x(_BY, 0)
_B: _Point = (_BX, _BY, 1, _BX * _BY % _P)


def _point_compress(p: _Point) -> bytes:
    x, y, z, _ = p
    zinv = pow(z, _P - 2, _P)
    x, y = x * zinv % _P, y * zinv % _P
    return int.to_bytes(y | ((x & 1) << 255), 32, "little")


def _point_decompress(data: bytes) -> _Point:
    if len(data) != 32:
        raise ValueError("invalid point encoding: expected 32 bytes")
    encoded = int.from_bytes(data, "little")
    y = encoded & ((1 << 255) - 1)
    x = _recover_x(y, encoded >> 255)
    return (x, y, 1, x * y % _P)


def _expand_seed(seed: bytes) -> Tuple[int, bytes]:
    """Derive the clamped scalar and the nonce prefix from a 32-byte seed."""
    if len(seed) != SEED_SIZE:
        raise ValueError(f"seed must be {SEED_SIZE} bytes, got {len(seed)}")
    digest = _sha512(seed)
    scalar = int.from_bytes(digest[:32], "little")
    scalar &= (1 << 254) - 8
    scalar |= 1 << 254
    return scalar, digest[32:]


def public_key(seed: bytes) -> bytes:
    """The 32-byte public key for a 32-byte private seed."""
    scalar, _ = _expand_seed(seed)
    return _point_compress(_point_mul(scalar, _B))


def sign(seed: bytes, message: bytes) -> bytes:
    """Sign ``message`` with the private ``seed`` (RFC 8032 §5.1.6)."""
    scalar, prefix = _expand_seed(seed)
    pub = _point_compress(_point_mul(scalar, _B))
    r = int.from_bytes(_sha512(prefix + message), "little") % _L
    r_enc = _point_compress(_point_mul(r, _B))
    k = int.from_bytes(_sha512(r_enc + pub + message), "little") % _L
    s = (r + k * scalar) % _L
    return r_enc + int.to_bytes(s, 32, "little")


def verify(pub: bytes, message: bytes, signature: bytes) -> bool:
    """Check ``signature`` over ``message`` against a public key.

    Returns ``False`` (never raises) for malformed encodings or forged
    signatures, matching the discard-garbage contract of
    :func:`repro.crypto.signatures.verify`.
    """
    if len(pub) != 32 or len(signature) != SIGNATURE_SIZE:
        return False
    try:
        a_point = _point_decompress(pub)
        r_point = _point_decompress(signature[:32])
    except ValueError:
        return False
    s = int.from_bytes(signature[32:], "little")
    if s >= _L:
        return False
    k = int.from_bytes(_sha512(signature[:32] + pub + message), "little") % _L
    # Cofactorless check: [S]B == R + [k]A.  Stricter than the RFC's
    # cofactored equation and what common implementations enforce.
    lhs = _point_mul(s, _B)
    rhs = _point_add(r_point, _point_mul(k, a_point))
    return _point_equal(lhs, rhs)
