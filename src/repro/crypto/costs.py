"""CPU cost model for cryptographic and serialization work.

The paper's analytical model charges a constant t_CPU per crypto operation
(signing or verifying) and the experiments run secp256k1 on 8-vCPU VMs.  The
simulation charges these costs to each replica's CPU :class:`FifoServer`,
which is what creates the compute-bound saturation behaviour.

Default values are chosen to put a 4-replica, 400-transactions-per-block
deployment in the same ballpark as the paper's figures (tens of KTx/s with
millisecond-scale latencies); absolute numbers are simulator outputs, not
hardware measurements.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class CryptoCostModel:
    """Service times (seconds) charged to a replica CPU.

    Attributes
    ----------
    sign_time:
        Producing one signature (a vote, or the proposer's block signature).
    verify_time:
        Verifying one signature.
    per_transaction_time:
        Per-transaction cost of hashing/serializing a transaction when a
        block is built or validated.
    block_overhead_time:
        Fixed per-block cost (header hashing, state bookkeeping).
    qc_aggregate_time:
        Assembling a quorum certificate from collected votes.
    qc_verify_time:
        Verifying an aggregated quorum certificate carried inside a block.
    """

    sign_time: float = 25e-6
    verify_time: float = 50e-6
    per_transaction_time: float = 0.4e-6
    block_overhead_time: float = 20e-6
    qc_aggregate_time: float = 30e-6
    qc_verify_time: float = 60e-6

    def proposal_build_cost(self, num_transactions: int) -> float:
        """CPU time for a leader to build and sign a block proposal."""
        return (
            self.block_overhead_time
            + self.per_transaction_time * num_transactions
            + self.qc_aggregate_time
            + self.sign_time
        )

    def proposal_verify_cost(self, num_transactions: int) -> float:
        """CPU time for a replica to validate an incoming proposal."""
        return (
            self.block_overhead_time
            + self.per_transaction_time * num_transactions
            + self.qc_verify_time
            + self.verify_time
        )

    def vote_build_cost(self) -> float:
        """CPU time to produce and sign a vote."""
        return self.sign_time

    def vote_verify_cost(self) -> float:
        """CPU time to check a single incoming vote."""
        return self.verify_time

    def timeout_build_cost(self) -> float:
        """CPU time to produce a timeout message."""
        return self.sign_time

    def timeout_verify_cost(self) -> float:
        """CPU time to check an incoming timeout message."""
        return self.verify_time

    def sync_request_cost(self) -> float:
        """CPU time to parse a sync BlockRequest (no crypto, just lookups)."""
        return self.block_overhead_time

    def sync_response_build_cost(self, num_blocks: int) -> float:
        """CPU time to serialize a sync BlockResponse batch."""
        return self.block_overhead_time * max(1, num_blocks)

    def sync_response_verify_cost(self, num_blocks: int, num_transactions: int) -> float:
        """CPU time to re-validate a fetched chain: one QC check per block."""
        return (
            self.block_overhead_time
            + num_blocks * self.qc_verify_time
            + num_transactions * self.per_transaction_time
        )

    def snapshot_request_cost(self) -> float:
        """CPU time to parse a SnapshotRequest (a lookup, no crypto)."""
        return self.block_overhead_time

    def snapshot_build_cost(self, num_items: int) -> float:
        """CPU time to serialize a SnapshotResponse (state copied at take time)."""
        return self.block_overhead_time + num_items * self.per_transaction_time

    def snapshot_install_cost(self, num_items: int) -> float:
        """CPU time to validate and install a checkpoint: QC check + state load."""
        return (
            self.block_overhead_time
            + self.qc_verify_time
            + num_items * self.per_transaction_time
        )

    def scaled(self, factor: float) -> "CryptoCostModel":
        """Return a copy with every cost multiplied by ``factor``.

        Used for the "original HotStuff" (OHS) baseline profile and for
        sensitivity/ablation studies.
        """
        return CryptoCostModel(
            sign_time=self.sign_time * factor,
            verify_time=self.verify_time * factor,
            per_transaction_time=self.per_transaction_time * factor,
            block_overhead_time=self.block_overhead_time * factor,
            qc_aggregate_time=self.qc_aggregate_time * factor,
            qc_verify_time=self.qc_verify_time * factor,
        )
