#!/usr/bin/env python
"""Docs check: intra-repo links must resolve; tagged examples must run.

Two passes over ``README.md`` and ``docs/*.md`` (stdlib only, no deps):

1. **Links** — every relative markdown link (``[text](path)`` or
   ``[text](path#anchor)``) must point at an existing file or directory in
   the repository.  External links (``http(s)://``, ``mailto:``) and
   pure-anchor links (``#section``) are skipped.  Bare intra-repo *path
   mentions* in prose or code are not checked — only actual link syntax.
2. **Smoke tests** — every fenced ``python`` code block whose first line is
   ``# docs-smoke-test`` is executed (with ``src`` on ``sys.path``).  This
   keeps runnable examples in the docs — like the crash → recover →
   catch-up scenario in ``docs/SCENARIOS.md`` — from rotting.

Exit status is non-zero on any broken link or failing example, which is how
CI consumes it: ``python tools/check_docs.py``.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SMOKE_TAG = "# docs-smoke-test"

#: Markdown inline links: [text](target).  Images ![alt](target) match too
#: (the leading ! simply precedes the captured group).
LINK_RE = re.compile(r"\[[^\]\[]*\]\(([^)\s]+)\)")
FENCE_RE = re.compile(r"^```python\s*$(.*?)^```\s*$", re.MULTILINE | re.DOTALL)


def doc_files():
    files = [REPO_ROOT / "README.md"]
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [f for f in files if f.exists()]


def strip_code_blocks(text: str) -> str:
    """Remove fenced code blocks so code snippets cannot produce links."""
    return re.sub(r"```.*?```", "", text, flags=re.DOTALL)


def check_links(path: Path) -> list:
    problems = []
    for target in LINK_RE.findall(strip_code_blocks(path.read_text())):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        resolved = (path.parent / target.split("#", 1)[0]).resolve()
        if not resolved.exists():
            problems.append(f"{path.relative_to(REPO_ROOT)}: broken link -> {target}")
    return problems


def run_smoke_blocks(path: Path) -> list:
    problems = []
    for index, block in enumerate(FENCE_RE.findall(path.read_text())):
        code = block.strip("\n")
        if not code.startswith(SMOKE_TAG):
            continue
        label = f"{path.relative_to(REPO_ROOT)} python block #{index}"
        print(f"running {label} ...")
        try:
            exec(compile(code, str(path), "exec"), {"__name__": "__docs_smoke__"})
        except Exception as exc:  # noqa: BLE001 - report and keep checking
            problems.append(f"{label}: example failed: {exc!r}")
    return problems


def main() -> int:
    sys.path.insert(0, str(REPO_ROOT / "src"))
    problems = []
    for path in doc_files():
        problems.extend(check_links(path))
    for path in doc_files():
        problems.extend(run_smoke_blocks(path))
    if problems:
        print("\ndocs check FAILED:")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print(f"docs check OK ({len(doc_files())} files)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
