#!/usr/bin/env python3
"""Perf smoke: measure the simulator's own speed, emit a BENCH_*.json summary.

The simulated metrics in this repo are deterministic, but nothing so far
recorded how *fast the simulator runs* — so there was no trajectory to judge
future optimizations against.  This tool runs a small fixed workload per
protocol, measures wall-clock time and scheduler events processed per
second (the :attr:`RunMetrics.PERF_FIELDS` the runners now attach), and
writes a ``BENCH_perf_smoke.json`` summary::

    python tools/perf_smoke.py                      # writes BENCH_perf_smoke.json
    python tools/perf_smoke.py --out my.json --repeats 3

Each case reports the *best* of ``--repeats`` runs (the usual benchmarking
convention: the minimum is the least-noisy estimate of the code's speed).

Exits non-zero only if a run fails outright or produces zero events — a
measurement, not a gate — **unless** ``--baseline PATH`` names a frozen
baseline, which turns it into a one-sided perf ratchet
(:mod:`repro.analysis.regress` with the ``events_per_second`` "ratchet-up"
policy): a drop beyond ``--ratchet-tolerance`` fails, while an improvement
passes and latches by re-freezing the baseline in place.  Freeze the first
baseline with ``--baseline PATH --freeze``.  Host timings are
machine-dependent, so keep the tolerance generous (default 0.5 = a 50%
slowdown fails) — the ratchet is for catching order-of-magnitude
regressions and recording wins, not micro-noise.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.config import Configuration  # noqa: E402
from repro.bench.runner import run_experiment  # noqa: E402

#: (case name, configuration) — a fixed, deterministic workload per case.
#: Sized for a few seconds of wall clock total: enough events for a stable
#: events/sec figure, small enough for every CI run.
CASES = [
    (
        "hotstuff_n4_b400",
        Configuration(protocol="hotstuff", num_nodes=4, block_size=400,
                      payload_size=0, num_clients=2, concurrency=200,
                      runtime=2.0, warmup=0.2, cooldown=0.2,
                      cost_profile="standard", view_timeout=0.5,
                      mempool_capacity=4000, seed=101),
    ),
    (
        "streamlet_n4_b400",
        Configuration(protocol="streamlet", num_nodes=4, block_size=400,
                      payload_size=0, num_clients=2, concurrency=200,
                      runtime=2.0, warmup=0.2, cooldown=0.2,
                      cost_profile="standard", view_timeout=0.5,
                      mempool_capacity=4000, seed=101),
    ),
    (
        "hotstuff_n16_checkpointed",
        Configuration(protocol="hotstuff", num_nodes=16, block_size=400,
                      payload_size=128, num_clients=2, concurrency=200,
                      runtime=1.0, warmup=0.2, cooldown=0.2,
                      cost_profile="standard", view_timeout=1.0,
                      mempool_capacity=4000, checkpoint_interval=50, seed=101),
    ),
]


def measure(config: Configuration, repeats: int) -> dict:
    """Run one case ``repeats`` times; report the fastest (least-noisy) run."""
    best = None
    for _ in range(repeats):
        result = run_experiment(config)
        metrics = result.metrics
        if best is None or metrics.wall_clock_seconds < best["wall_clock_seconds"]:
            best = {
                "wall_clock_seconds": round(metrics.wall_clock_seconds, 4),
                "events_per_second": round(metrics.events_per_second, 1),
                "sim_seconds": round(config.total_duration, 4),
                "sim_to_wall_ratio": round(
                    config.total_duration / metrics.wall_clock_seconds, 3
                ) if metrics.wall_clock_seconds > 0 else 0.0,
                "committed_transactions": metrics.committed_transactions,
                "throughput_tps": round(metrics.throughput_tps, 1),
                "consistent": result.consistent,
            }
    return best


def profile_cases(out_path: Path, top: int = 25) -> list:
    """cProfile one run per case; one report file per case, stable names.

    ``out_path`` is the naming *stem*: case ``hotstuff_n4_b400`` with stem
    ``BENCH_perf_profile.txt`` lands in ``BENCH_perf_profile_hotstuff_n4_b400.txt``
    (previously every case was appended to one file, so a partial re-run
    silently dropped the other cases' sections).  The reports are uploaded
    as part of the CI ``perf-smoke`` artifact so a regression caught by the
    ratchet comes with the profile that explains it.

    The same top-``top`` hot spots are also folded into a Chrome-format
    trace (``BENCH_perf_trace.json`` next to the stem, one ``profile``
    slice per function, width = cumulative time) so they can be inspected
    in ui.perfetto.dev alongside protocol traces.
    """
    import cProfile
    import io
    import pstats

    from repro.obs.export import write_chrome_trace
    from repro.obs.trace import PROFILE, Tracer

    tracer = Tracer(categories=PROFILE)
    written = []
    for name, config in CASES:
        print(f"perf_smoke: profiling {name} ...", flush=True)
        profiler = cProfile.Profile()
        profiler.enable()
        run_experiment(config)
        profiler.disable()
        buffer = io.StringIO()
        stats = pstats.Stats(profiler, stream=buffer)
        stats.sort_stats("tottime").print_stats(top)
        case_path = out_path.with_name(f"{out_path.stem}_{name}{out_path.suffix}")
        case_path.write_text(
            f"=== {name} (top {top} by self time) ===\n{buffer.getvalue()}"
        )
        written.append(case_path)
        print(f"perf_smoke: wrote profile report to {case_path}")
        # (cc, nc, tt, ct, callers) per (file, line, func) — the same
        # ordering as the text report, recorded as PROFILE trace slices.
        ranked = sorted(
            stats.stats.items(), key=lambda item: item[1][2], reverse=True
        )[:top]
        for (filename, line, func), (_, ncalls, tottime, cumtime, _) in ranked:
            tracer.emit(
                0.0,
                f"profile:{name}",
                PROFILE,
                f"{Path(filename).name}:{line}:{func}",
                0,
                {
                    "calls": ncalls,
                    "tottime": round(tottime, 6),
                    "cumtime": round(cumtime, 6),
                },
            )
    trace_path = out_path.with_name("BENCH_perf_trace.json")
    write_chrome_trace(tracer.records(), trace_path)
    written.append(trace_path)
    print(f"perf_smoke: wrote profile trace to {trace_path}")
    return written


def _perf_records(results: dict) -> list:
    """Shape per-case results as campaign records the regress layer accepts.

    The ``*_traced`` diagnostic case is excluded: the ratchet gates (and
    latches) the *tracing-disabled* hot path only, so enabling tracing can
    never lower the frozen events/sec floor.
    """
    return [
        {
            "run_id": name,
            "campaign": "perf_smoke",
            "params": {"_case": name},
            "metrics": {"events_per_second": case["events_per_second"]},
        }
        for name, case in results.items()
        if not name.endswith("_traced")
    ]


def ratchet(results: dict, baseline_path: Path, tolerance: float, freeze_new: bool) -> int:
    """Gate events/sec against a frozen baseline; latch any improvement."""
    from repro.analysis.regress import (
        BaselineError,
        compare_records,
        freeze,
        load_baseline,
        save_baseline,
    )
    from repro.analysis.stats import aggregate_records

    records = _perf_records(results)
    metrics = ["events_per_second"]
    if freeze_new or not baseline_path.exists():
        save_baseline(baseline_path, freeze(aggregate_records(records), metrics=metrics))
        print(f"perf_smoke: baseline frozen at {baseline_path}")
        return 0
    try:
        baseline = load_baseline(baseline_path)
    except BaselineError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    report = compare_records(
        baseline, records, metrics=metrics,
        tolerances={"events_per_second": tolerance},
    )
    print(report.render())
    if report.improvements:
        # A confirmed win becomes the new floor — the ratchet only turns
        # one way.
        save_baseline(baseline_path, freeze(aggregate_records(records), metrics=metrics))
        print(f"perf_smoke: improvement latched into {baseline_path}")
    return 0 if report.ok else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=str(Path(__file__).resolve().parent.parent
                                             / "BENCH_perf_smoke.json"),
                        help="output JSON path (default: repo-root BENCH_perf_smoke.json)")
    parser.add_argument("--repeats", type=int, default=2,
                        help="runs per case, best-of (default 2)")
    parser.add_argument("--baseline",
                        help="events/sec ratchet baseline JSON; gate against it "
                             "(and latch improvements), or create it if absent")
    parser.add_argument("--freeze", action="store_true",
                        help="rewrite the baseline from this run instead of gating")
    parser.add_argument("--ratchet-tolerance", type=float, default=0.5,
                        help="relative drop allowed before the gate fails "
                             "(default 0.5; host timings are noisy)")
    parser.add_argument("--profile", nargs="?", const="BENCH_perf_profile.txt",
                        metavar="STEM",
                        help="also cProfile one run per case: top-25 hot spots "
                             "per case to STEM_<case>.txt, plus a Perfetto-"
                             "loadable BENCH_perf_trace.json "
                             "(default stem BENCH_perf_profile.txt next to --out)")
    args = parser.parse_args(argv)

    results = {}
    for name, config in CASES:
        print(f"perf_smoke: {name} ...", flush=True)
        case = measure(config, max(1, args.repeats))
        if case["events_per_second"] <= 0:
            print(f"error: {name} processed no events", file=sys.stderr)
            return 1
        results[name] = case
        print(f"  {case['wall_clock_seconds']}s wall, "
              f"{case['events_per_second']:.0f} events/s, "
              f"sim/wall {case['sim_to_wall_ratio']}x")

    # Re-measure the first case with tracing enabled: the observability
    # subsystem's overhead, quantified on every perf run.  Diagnostic only —
    # _perf_records keeps it out of the events/sec ratchet.
    from repro.obs.trace import tracing

    base_name, base_config = CASES[0]
    traced_name = f"{base_name}_traced"
    print(f"perf_smoke: {traced_name} (tracing enabled) ...", flush=True)
    with tracing():
        traced_case = measure(base_config, max(1, args.repeats))
    results[traced_name] = traced_case
    disabled_eps = results[base_name]["events_per_second"]
    traced_eps = traced_case["events_per_second"]
    trace_overhead = {
        "case": base_name,
        "events_per_second_disabled": disabled_eps,
        "events_per_second_traced": traced_eps,
        "overhead_pct": round(100.0 * (1.0 - traced_eps / disabled_eps), 1)
        if disabled_eps > 0
        else 0.0,
    }
    print(f"  {traced_case['events_per_second']:.0f} events/s traced "
          f"({trace_overhead['overhead_pct']}% overhead)")

    summary = {
        "trace_overhead": trace_overhead,
        "benchmark": "perf_smoke",
        "created": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "system": platform.system(),
        },
        "repeats": max(1, args.repeats),
        "results": results,
    }
    out = Path(args.out)
    out.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
    print(f"perf_smoke: wrote {out}")
    if args.profile:
        profile_path = Path(args.profile)
        if not profile_path.is_absolute() and profile_path.name == str(profile_path):
            profile_path = out.parent / profile_path
        profile_cases(profile_path)
    if args.baseline:
        return ratchet(results, Path(args.baseline), args.ratchet_tolerance, args.freeze)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
