#!/usr/bin/env python3
"""Long-run memory smoke test: bounded forests, unchanged committed metrics.

Runs a 60-second-simulated-time experiment twice — checkpointing off and on
(``checkpoint_interval=50``) — and asserts the bounded-memory contract of
:mod:`repro.checkpoint`:

* every committed-throughput/latency metric is **bit-identical** between the
  two runs (checkpointing must be invisible to consensus);
* with checkpointing on, the peak per-replica forest stays below a fixed
  bound of O(checkpoint interval), while the baseline's forest grows with
  the committed chain;
* the scheduler's event heap stays compact (cancelled pacemaker timers are
  lazily swept, so the heap tracks live timers, not view-change history);
* the replica's reply-routing state stays bounded: the origin index holds at
  most its FIFO capacity and the replied-txid dedup at most its per-client
  floor-plus-window entries, however many transactions committed;
* the vote and timeout trackers stay bounded: ``Replica._commit`` calls
  ``prune_below(committed view)`` on both, so entries track the in-flight
  view window, not the thousands of views the run enters.

Exits non-zero on any violation.  CI runs this as the ``memory-smoke`` job;
run it locally with ``python tools/memory_smoke.py``.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.config import Configuration  # noqa: E402
from repro.bench.runner import build_cluster  # noqa: E402
from repro.core.replica import ORIGIN_INDEX_CAPACITY  # noqa: E402
from repro.executor.kvstore import DEFAULT_DEDUP_WINDOW  # noqa: E402

#: Simulated seconds of the measured run.
HORIZON = 60.0
#: Commits between checkpoints in the checkpointed run.
INTERVAL = 50
#: Peak forest bound: the retained window is [checkpoint, head], so one
#: interval plus the uncommitted in-flight tail.
FOREST_BOUND = 2 * INTERVAL + 16
#: Vote/timeout tracker bound: entries live only for views at or above the
#: last committed view (``prune_below``), so a generous multiple of the
#: in-flight view window — thousands of views pass through either tracker
#: over the run.
TRACKER_BOUND = 64

#: RunMetrics fields that must be bit-identical between the two runs.
COMMITTED_FIELDS = [
    "throughput_tps",
    "mean_latency",
    "median_latency",
    "p99_latency",
    "chain_growth_rate",
    "block_interval",
    "committed_transactions",
    "committed_blocks",
    "blocks_added",
    "blocks_forked",
    "safety_violations",
    "latency_samples",
]


def run_once(checkpoint_interval: int):
    config = Configuration(
        num_nodes=4,
        block_size=20,
        concurrency=10,
        num_clients=1,
        cost_profile="fast",
        view_timeout=0.03,
        election="hash",
        request_timeout=0.3,
        seed=9,
        warmup=0.0,
        runtime=HORIZON,
        cooldown=0.0,
        checkpoint_interval=checkpoint_interval,
    )
    cluster = build_cluster(config)
    started = time.perf_counter()
    cluster.start()
    cluster.run()
    wall = time.perf_counter() - started
    return cluster, wall


def main() -> int:
    print(f"memory smoke: {HORIZON:.0f}s simulated, checkpoint_interval={INTERVAL}")
    baseline, base_wall = run_once(0)
    print(f"  baseline run (checkpointing off): {base_wall:.1f}s wall")
    checked, ck_wall = run_once(INTERVAL)
    print(f"  checkpointed run:                 {ck_wall:.1f}s wall")

    failures = []
    base_metrics = baseline.metrics.summarize()
    ck_metrics = checked.metrics.summarize()
    for field in COMMITTED_FIELDS:
        base_value = getattr(base_metrics, field)
        ck_value = getattr(ck_metrics, field)
        if base_value != ck_value:
            failures.append(
                f"metric {field} diverged: baseline {base_value!r} vs "
                f"checkpointed {ck_value!r}"
            )

    report = checked.checkpoint_report()
    base_forest = len(baseline.replicas["r0"].forest)
    committed = baseline.replicas["r0"].forest.committed_height
    print(f"  committed blocks: {committed}")
    print(f"  baseline forest blocks (r0): {base_forest}")
    print(
        f"  checkpointed peak forest blocks: {report.peak_forest_blocks} "
        f"(bound {FOREST_BOUND}); {report.checkpoints_taken} checkpoints, "
        f"{report.blocks_truncated} blocks truncated"
    )
    if report.checkpoints_taken == 0:
        failures.append("no checkpoints were taken")
    if report.peak_forest_blocks > FOREST_BOUND:
        failures.append(
            f"peak forest {report.peak_forest_blocks} exceeds bound {FOREST_BOUND}"
        )
    if base_forest <= FOREST_BOUND:
        failures.append(
            f"baseline forest ({base_forest} blocks) never outgrew the bound; "
            "the smoke run is too short to prove anything"
        )
    if not checked.consistency_check():
        failures.append("checkpointed run failed the consistency check")
    if not baseline.consistency_check():
        failures.append("baseline run failed the consistency check")

    # Reply-routing bounds: the run commits far more transactions than
    # either structure may retain, so these only hold if eviction works.
    committed_tx = base_metrics.committed_transactions
    num_clients = baseline.config.num_clients
    replied_bound = num_clients * (1 + DEFAULT_DEDUP_WINDOW)
    if committed_tx <= replied_bound:
        failures.append(
            f"only {committed_tx} transactions committed (bound {replied_bound}); "
            "the smoke run is too short to exercise reply-state eviction"
        )
    for label, cluster in (("baseline", baseline), ("checkpointed", checked)):
        for replica in cluster.replicas.values():
            origin = len(replica._origin_clients)
            replied = replica._replied_txids.entry_count()
            if origin > ORIGIN_INDEX_CAPACITY:
                failures.append(
                    f"{label} {replica.node_id}: origin index holds {origin} "
                    f"entries (capacity {ORIGIN_INDEX_CAPACITY})"
                )
            if replied > replied_bound:
                failures.append(
                    f"{label} {replica.node_id}: replied-txid dedup holds "
                    f"{replied} entries (bound {replied_bound})"
                )
            votes_held = len(replica.quorum._votes) + len(replica.quorum._certified)
            timeout_tracker = replica.pacemaker.timeout_tracker
            timeouts_held = (
                len(timeout_tracker._timeouts) + len(timeout_tracker._certified)
            )
            if votes_held > TRACKER_BOUND:
                failures.append(
                    f"{label} {replica.node_id}: quorum tracker holds "
                    f"{votes_held} entries (bound {TRACKER_BOUND}); "
                    "prune_below is not keeping up"
                )
            if timeouts_held > TRACKER_BOUND:
                failures.append(
                    f"{label} {replica.node_id}: timeout tracker holds "
                    f"{timeouts_held} entries (bound {TRACKER_BOUND}); "
                    "prune_below is not keeping up"
                )
    r0 = baseline.replicas["r0"]
    print(
        f"  reply routing (r0): {len(r0._origin_clients)} origin entries "
        f"(cap {ORIGIN_INDEX_CAPACITY}), {r0._replied_txids.entry_count()} "
        f"replied entries (bound {replied_bound}), "
        f"{committed_tx} transactions committed"
    )
    print(
        f"  trackers (r0): {len(r0.quorum._votes) + len(r0.quorum._certified)} "
        f"vote entries, "
        f"{len(r0.pacemaker.timeout_tracker._timeouts) + len(r0.pacemaker.timeout_tracker._certified)} "
        f"timeout entries (bound {TRACKER_BOUND})"
    )

    for label, cluster in (("baseline", baseline), ("checkpointed", checked)):
        scheduler = cluster.scheduler
        print(
            f"  {label} scheduler heap: {scheduler.pending_events} pending "
            f"({scheduler.cancelled_pending} cancelled), "
            f"{scheduler.compactions} compactions, "
            f"{scheduler.processed_events} events processed"
        )
        # One view timer per replica plus in-flight work; views entered over
        # the run number in the thousands, none of which may linger.
        if scheduler.pending_events > 10_000:
            failures.append(
                f"{label} scheduler heap grew to {scheduler.pending_events} "
                "entries (cancelled-timer compaction is not working)"
            )

    if failures:
        print("FAIL:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("OK: forests bounded, reply routing bounded, committed metrics "
          "bit-identical, heap compact")
    return 0


if __name__ == "__main__":
    sys.exit(main())
